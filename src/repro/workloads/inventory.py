"""Epoch-versioned tag populations: the continuous-inventory substrate.

Every entry point used to be one-shot: build a :class:`TagSet`, plan,
execute.  Real deployments (the paper's own missing-tag use case, and
the large-scale identification methodology of Chu et al.,
arXiv:2205.10235) poll the *same* population continuously while tags
arrive, depart, and go missing.  This module provides the population
side of that loop:

- :class:`PopulationDiff` — one epoch's churn (arrivals by EPC,
  departures / gone-missing / returned by stable slot id).
- :class:`InventoryStore` — an epoch/diff log over the population.
  Every tag ever admitted owns a **stable slot id** that never changes
  and is never reused; departures leave tombstones.  ``apply(diff)``
  is O(|diff|) amortised — columnar identity arrays grow by doubling,
  statuses flip in place — and bumps the epoch counter.  The compacted
  :class:`TagSet` view (and the slot↔local index maps the DES needs)
  are built lazily and memoised per epoch, so consumers that stay in
  slot space — the incremental replanner — never pay O(n) per epoch.
- :class:`ChurnModel` — a category-structured churn generator (Wang et
  al., arXiv:2406.10347: same-SKU tags share an EPC category prefix),
  driving arrivals/departures/missing events per epoch from one RNG.

Index spaces, once and for all: a **slot** is a stable global id into
the store's columns (dense over everything ever admitted, including
tombstones).  A **local** index is a position in the current epoch's
compacted ``TagSet`` (what planners and the DES consume).  ``slots()``
and ``local_of()`` convert between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.tagsets import TagSet

__all__ = [
    "STATUS_PRESENT",
    "STATUS_ABSENT",
    "STATUS_DEPARTED",
    "PopulationDiff",
    "EpochView",
    "InventoryStore",
    "ChurnModel",
]

#: expected and believed physically present
STATUS_PRESENT = 0
#: still in the known population but physically absent (gone missing)
STATUS_ABSENT = 1
#: retired from the known population (tombstone; slot never reused)
STATUS_DEPARTED = 2

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)
_HI_BITS = 32  # EPC bits above the low 64-bit word (see tagsets)


def _as_slots(values) -> np.ndarray:
    arr = np.asarray(values if values is not None else _EMPTY_I64,
                     dtype=np.int64).ravel()
    return arr


@dataclass(frozen=True)
class PopulationDiff:
    """One epoch's churn against an :class:`InventoryStore`.

    Arrivals are identified by EPC halves (they have no slot yet — the
    store assigns one); every other change names existing stable slots.
    ``departed`` retires slots from the known population entirely;
    ``gone_missing`` / ``returned`` flip the physical-presence status of
    known slots without changing the planning population.
    """

    arrived_hi: np.ndarray = field(default_factory=lambda: _EMPTY_U64)
    arrived_lo: np.ndarray = field(default_factory=lambda: _EMPTY_U64)
    departed: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    gone_missing: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    returned: np.ndarray = field(default_factory=lambda: _EMPTY_I64)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "arrived_hi", np.asarray(self.arrived_hi, dtype=np.uint64))
        object.__setattr__(
            self, "arrived_lo", np.asarray(self.arrived_lo, dtype=np.uint64))
        if self.arrived_hi.shape != self.arrived_lo.shape:
            raise ValueError("arrived_hi and arrived_lo must be aligned")
        for name in ("departed", "gone_missing", "returned"):
            object.__setattr__(self, name, _as_slots(getattr(self, name)))

    @classmethod
    def from_tags(cls, tags: TagSet, **kw) -> "PopulationDiff":
        """A diff admitting every tag of ``tags`` (plus keyword changes)."""
        return cls(arrived_hi=tags.id_hi, arrived_lo=tags.id_lo, **kw)

    @property
    def n_arrived(self) -> int:
        return int(self.arrived_hi.size)

    @property
    def n_changes(self) -> int:
        return (self.n_arrived + self.departed.size + self.gone_missing.size
                + self.returned.size)

    @property
    def is_empty(self) -> bool:
        return self.n_changes == 0


@dataclass(frozen=True)
class EpochView:
    """What one ``apply`` did, in slot space (the replanner's input).

    ``arrived_slots`` are the store-assigned slots of the diff's
    arrivals (in diff order), ``arrived_words`` their identity words.
    ``n_known`` / ``n_present`` describe the population *after* the
    apply.
    """

    epoch: int
    arrived_slots: np.ndarray
    arrived_words: np.ndarray
    departed_slots: np.ndarray
    gone_missing_slots: np.ndarray
    returned_slots: np.ndarray
    n_slots: int
    n_known: int
    n_present: int


class InventoryStore:
    """The epoch/diff log over a live tag population.

    Columns are indexed by stable slot id and grow by doubling; a
    slot's identity never changes and tombstones are never reused, so
    every artifact keyed by slot (plans, schedules, verdicts) stays
    valid across epochs.  All reads of the compacted views are memoised
    against the epoch counter.
    """

    def __init__(self, tags: TagSet | None = None, capacity: int = 64):
        capacity = max(int(capacity), 1)
        self._hi = np.empty(capacity, dtype=np.uint64)
        self._lo = np.empty(capacity, dtype=np.uint64)
        self._words = np.empty(capacity, dtype=np.uint64)
        self._status = np.empty(capacity, dtype=np.int8)
        self._n_slots = 0
        self._n_known = 0
        self._n_present = 0
        self._epoch = 0
        self._epc_slot: dict[tuple[int, int], int] = {}
        self._view_epoch = -1
        self._view: tuple[np.ndarray, TagSet, np.ndarray] | None = None
        if tags is not None and len(tags):
            self.apply(PopulationDiff.from_tags(tags))

    # ------------------------------------------------------------------
    # epoch construction: O(|diff|) amortised
    # ------------------------------------------------------------------
    def apply(self, diff: PopulationDiff) -> EpochView:
        """Admit/retire/flip tags per ``diff`` and open the next epoch.

        Raises:
            ValueError: on duplicate arrivals, or status changes naming
                slots whose current status does not admit them (e.g.
                departing an already-departed slot).
        """
        n_arr = diff.n_arrived
        base = self._n_slots
        # validate everything up front so a bad diff mutates nothing
        keys = list(zip(diff.arrived_hi.tolist(), diff.arrived_lo.tolist()))
        if len(set(keys)) != len(keys):
            raise ValueError("diff admits the same EPC twice")
        for hi, lo in keys:
            if (hi, lo) in self._epc_slot:
                raise ValueError(
                    f"arrival duplicates a live EPC: ({hi:#x}, {lo:#x})")
        for slots, allowed in (
            (diff.departed, (STATUS_PRESENT, STATUS_ABSENT)),
            (diff.gone_missing, (STATUS_PRESENT,)),
            (diff.returned, (STATUS_ABSENT,)),
        ):
            for s in slots.tolist():
                if not 0 <= s < base:
                    raise ValueError(f"unknown slot {s}")
                if int(self._status[s]) not in allowed:
                    raise ValueError(
                        f"slot {s} has status {int(self._status[s])}, "
                        "which the diff's change does not admit")
        if (np.intersect1d(diff.departed, diff.gone_missing).size
                or np.intersect1d(diff.departed, diff.returned).size
                or np.intersect1d(diff.gone_missing, diff.returned).size):
            raise ValueError("diff names a slot in two change sets")
        if base + n_arr > self._hi.size:
            grow = max(self._hi.size * 2, base + n_arr)
            for name in ("_hi", "_lo", "_words", "_status"):
                old = getattr(self, name)
                new = np.empty(grow, dtype=old.dtype)
                new[:base] = old[:base]
                setattr(self, name, new)
        arrived_slots = np.arange(base, base + n_arr, dtype=np.int64)
        if n_arr:
            self._hi[base:base + n_arr] = diff.arrived_hi
            self._lo[base:base + n_arr] = diff.arrived_lo
            # identity word: same injective mixing fold TagSet performs
            from repro.hashing.universal import splitmix64

            words = splitmix64(diff.arrived_hi) ^ diff.arrived_lo
            self._words[base:base + n_arr] = words
            self._status[base:base + n_arr] = STATUS_PRESENT
            for i, key in enumerate(keys):
                self._epc_slot[key] = base + i
        self._n_slots = base + n_arr
        self._n_known += n_arr
        self._n_present += n_arr

        status = self._status
        for s in diff.departed.tolist():
            if int(status[s]) == STATUS_PRESENT:
                self._n_present -= 1
            del self._epc_slot[(int(self._hi[s]), int(self._lo[s]))]
            status[s] = STATUS_DEPARTED
            self._n_known -= 1
        if diff.gone_missing.size:
            status[diff.gone_missing] = STATUS_ABSENT
            self._n_present -= int(diff.gone_missing.size)
        if diff.returned.size:
            status[diff.returned] = STATUS_PRESENT
            self._n_present += int(diff.returned.size)

        self._epoch += 1
        return EpochView(
            epoch=self._epoch,
            arrived_slots=arrived_slots,
            arrived_words=self._words[base:base + n_arr].copy(),
            departed_slots=diff.departed,
            gone_missing_slots=diff.gone_missing,
            returned_slots=diff.returned,
            n_slots=self._n_slots,
            n_known=self._n_known,
            n_present=self._n_present,
        )

    # ------------------------------------------------------------------
    # cheap accessors (no view materialisation)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def n_slots(self) -> int:
        """High-water slot count (tombstones included)."""
        return self._n_slots

    @property
    def n_known(self) -> int:
        """Known population size (PRESENT + ABSENT)."""
        return self._n_known

    @property
    def n_present(self) -> int:
        return self._n_present

    def status(self, slot: int) -> int:
        if not 0 <= slot < self._n_slots:
            raise ValueError(f"unknown slot {slot}")
        return int(self._status[slot])

    def id_words(self) -> np.ndarray:
        """Identity words by slot (read-only view, tombstones included)."""
        return self._words[:self._n_slots]

    def slot_of(self, hi: int, lo: int) -> int | None:
        """Stable slot of a live EPC, or ``None`` if not in the store."""
        return self._epc_slot.get((hi, lo))

    # ------------------------------------------------------------------
    # memoised compacted views (lazy: only from-scratch planning and the
    # DES localisation pay the O(n); the slot-space replan path doesn't)
    # ------------------------------------------------------------------
    def _compact(self) -> tuple[np.ndarray, TagSet, np.ndarray]:
        if self._view_epoch != self._epoch:
            slots = np.flatnonzero(
                self._status[:self._n_slots] != STATUS_DEPARTED)
            tags = TagSet(self._hi[slots], self._lo[slots])
            local_of = np.full(self._n_slots, -1, dtype=np.int64)
            local_of[slots] = np.arange(slots.size, dtype=np.int64)
            self._view = (slots, tags, local_of)
            self._view_epoch = self._epoch
        assert self._view is not None
        return self._view

    def slots(self) -> np.ndarray:
        """Stable slots of the known population, ascending (local order)."""
        return self._compact()[0]

    def tagset(self) -> TagSet:
        """The compacted known population as a :class:`TagSet`."""
        return self._compact()[1]

    def local_of(self) -> np.ndarray:
        """slot → local index map (-1 for tombstones), this epoch."""
        return self._compact()[2]

    def present_local(self) -> np.ndarray:
        """Local indices (into :meth:`tagset`) of physically present tags."""
        slots = self._compact()[0]
        return np.flatnonzero(self._status[slots] == STATUS_PRESENT)


# ----------------------------------------------------------------------
# category-structured churn (Wang et al., arXiv:2406.10347)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnModel:
    """Per-epoch churn rates over an :class:`InventoryStore`.

    Rates are expected *fractions of the current known population* per
    epoch; event counts are Poisson-drawn from the supplied RNG, so a
    seeded generator yields a reproducible churn trace.  Arrivals carry
    category-structured EPCs: a fixed palette of ``n_categories``
    category ids occupies the top ``category_bits`` of the EPC (same
    shape as :func:`repro.workloads.tagsets.clustered_tagset`), because
    batches of same-SKU stock arrive together in real deployments.
    """

    arrival_rate: float = 0.01
    departure_rate: float = 0.01
    missing_rate: float = 0.0
    return_rate: float = 0.0
    n_categories: int = 8
    category_bits: int = 24

    def __post_init__(self) -> None:
        for name in ("arrival_rate", "departure_rate", "missing_rate",
                     "return_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 1 <= self.category_bits <= _HI_BITS:
            raise ValueError(f"category_bits must be in [1, {_HI_BITS}]")
        if self.n_categories < 1:
            raise ValueError("n_categories must be positive")

    def _arrivals(self, k: int, rng: np.random.Generator,
                  store: InventoryStore) -> tuple[np.ndarray, np.ndarray]:
        # the category palette is a pure function of the model config so
        # successive epochs keep drawing from the same SKUs
        palette = np.random.default_rng(
            (self.n_categories, self.category_bits)
        ).integers(0, 1 << self.category_bits, size=self.n_categories,
                   dtype=np.uint64)
        shift = np.uint64(_HI_BITS - self.category_bits)
        low_hi = _HI_BITS - self.category_bits
        assign = rng.integers(0, self.n_categories, size=k, dtype=np.int64)
        hi = palette[assign] << shift
        if low_hi:
            hi = hi | rng.integers(0, 1 << low_hi, size=k, dtype=np.uint64)
        lo = rng.integers(0, 1 << 62, size=k, dtype=np.uint64) * np.uint64(4) \
            + rng.integers(0, 4, size=k, dtype=np.uint64)
        # reject EPCs already live (vanishingly rare; keeps apply() clean)
        fresh = np.fromiter(
            (store.slot_of(h, l) is None
             for h, l in zip(hi.tolist(), lo.tolist())),
            dtype=bool, count=k,
        )
        return hi[fresh], lo[fresh]

    def draw(self, store: InventoryStore,
             rng: np.random.Generator) -> PopulationDiff:
        """One epoch's churn diff against the store's current state."""
        n = store.n_known
        n_arr = int(rng.poisson(self.arrival_rate * n)) if n else 0
        n_dep = int(rng.poisson(self.departure_rate * n)) if n else 0
        n_mis = int(rng.poisson(self.missing_rate * n)) if n else 0
        hi, lo = (self._arrivals(n_arr, rng, store) if n_arr
                  else (_EMPTY_U64, _EMPTY_U64))
        slots = store.slots()
        status = store._status  # noqa: SLF001 - workload generator is a friend
        present = slots[status[slots] == STATUS_PRESENT]
        absent = slots[status[slots] == STATUS_ABSENT]
        n_ret = int(rng.poisson(self.return_rate * absent.size)) \
            if absent.size else 0
        picked = rng.choice(
            present, size=min(n_dep + n_mis, present.size), replace=False,
        ) if present.size else _EMPTY_I64
        departed = np.sort(picked[:min(n_dep, picked.size)])
        gone = np.sort(picked[min(n_dep, picked.size):])
        returned = np.sort(rng.choice(
            absent, size=min(n_ret, absent.size), replace=False,
        )) if absent.size else _EMPTY_I64
        return PopulationDiff(
            arrived_hi=hi, arrived_lo=lo, departed=departed,
            gone_missing=gone, returned=returned,
        )
