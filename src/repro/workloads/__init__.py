"""Tag populations and application scenarios.

- :mod:`repro.workloads.tagsets` — the :class:`TagSet` container and
  generators for realistic 96-bit EPC populations (uniform random,
  category-clustered, sequential serial numbers, adversarial).
- :mod:`repro.workloads.scenarios` — named application scenarios used
  by the examples (warehouse inventory, cold-chain sensing, theft watch).
- :mod:`repro.workloads.inventory` — the epoch-versioned
  :class:`InventoryStore`: a churning population as a diff log with
  stable global slot ids, plus the :class:`ChurnModel` generator.
"""

from repro.workloads.inventory import (
    ChurnModel,
    EpochView,
    InventoryStore,
    PopulationDiff,
)
from repro.workloads.tagsets import (
    TagSet,
    uniform_tagset,
    clustered_tagset,
    sequential_tagset,
    adversarial_tagset,
    crc_embedded_tagset,
)
from repro.workloads.scenarios import (
    Scenario,
    warehouse_scenario,
    cold_chain_scenario,
    theft_watch_scenario,
)

__all__ = [
    "TagSet",
    "uniform_tagset",
    "clustered_tagset",
    "sequential_tagset",
    "adversarial_tagset",
    "crc_embedded_tagset",
    "InventoryStore",
    "PopulationDiff",
    "EpochView",
    "ChurnModel",
    "Scenario",
    "warehouse_scenario",
    "cold_chain_scenario",
    "theft_watch_scenario",
]
