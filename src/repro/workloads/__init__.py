"""Tag populations and application scenarios.

- :mod:`repro.workloads.tagsets` — the :class:`TagSet` container and
  generators for realistic 96-bit EPC populations (uniform random,
  category-clustered, sequential serial numbers, adversarial).
- :mod:`repro.workloads.scenarios` — named application scenarios used
  by the examples (warehouse inventory, cold-chain sensing, theft watch).
"""

from repro.workloads.tagsets import (
    TagSet,
    uniform_tagset,
    clustered_tagset,
    sequential_tagset,
    adversarial_tagset,
    crc_embedded_tagset,
)
from repro.workloads.scenarios import (
    Scenario,
    warehouse_scenario,
    cold_chain_scenario,
    theft_watch_scenario,
)

__all__ = [
    "TagSet",
    "uniform_tagset",
    "clustered_tagset",
    "sequential_tagset",
    "adversarial_tagset",
    "crc_embedded_tagset",
    "Scenario",
    "warehouse_scenario",
    "cold_chain_scenario",
    "theft_watch_scenario",
]
