"""Columnar, version-keyed, crash-safe on-disk cell store.

The sweep engine memoises one metric value per ``(protocol, n, run,
...)`` trial cell.  The v1 store was a line-per-cell ``cells.jsonl``:
simple, but it parsed every line with ``json.loads`` on load (minutes at
million-cell scale), grew without bound (re-renders append duplicate
keys forever), and — worst — was never invalidated when the code that
produced the values changed, silently serving stale floats.

This module replaces it with three pieces:

- :func:`cache_version` — a fingerprint (BLAKE2b) of every ``repro``
  source file on the metric path (planners, PHY, DES, hashing,
  workloads, baselines, analysis, apps, and the runner itself).  The
  cache salts every key with it, so editing any file that can change a
  cell's value invalidates the affected entries on the next run instead
  of serving yesterday's floats.  The fingerprint is content-based
  (``touch`` alone changes nothing; an edit always does).

- :class:`CellStore` — an append-only sequence of binary **segments**
  (``cells-XXXXXXXX.seg``).  Each segment is columnar: one UTF-8 key
  blob with an offsets column, one packed ``float64`` value column with
  an offsets column, and a per-entry flags column, framed by a magic
  header and a CRC-32 footer.  Segments are written atomically (temp
  file + fsync + rename), so a crash mid-write can never corrupt
  existing data, and a torn or truncated segment fails its checksum and
  is dropped *alone* — every other segment still loads.  Loading is a
  handful of ``np.frombuffer`` calls plus one string split per key: at
  100k cells it is an order of magnitude faster than parsing JSON lines.

- **Load-time compaction.**  Appending is last-wins, so duplicate keys
  (re-put cells) and entries salted with a stale code version accumulate
  as garbage.  When the garbage fraction crosses a threshold the store
  rewrites itself as one consolidated segment of live entries and
  deletes the rest — disk usage tracks the live set instead of the
  write history.

A legacy ``cells.jsonl`` found in the directory is migrated on first
load: its entries are adopted under the current code version (they
cannot carry their own), re-written as a segment, and the JSON file is
removed.  Migration is crash-safe — the JSON file is deleted only after
the segment is durably on disk.
"""

from __future__ import annotations

import hashlib
import logging
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["CellStore", "StoreStats", "cache_version"]

_log = logging.getLogger(__name__)

#: segment framing: 8-byte head/tail magics bracket every segment file
_MAGIC = b"RFCELLS1"
_TAIL = b"RFCELLE1"
#: fixed-size header after the magic: format version, entry count,
#: key-blob length, value count (little-endian)
_HEADER = struct.Struct("<HHIQQ")
_SEGMENT_FORMAT = 1
#: footer: CRC-32 of everything before it, then the tail magic
_FOOTER = struct.Struct("<I8s")

#: entry flag bit: the value is a list of floats (vector metric), not a
#: scalar — 1-element lists round-trip as lists, scalars as floats
_FLAG_LIST = 0x01

#: header layout bit (the ``reserved`` u16): keys in the blob are
#: newline-joined, so decode is one ``str.split`` instead of one slice
#: per key (~2x faster at 100k entries).  Only set when no key contains
#: a newline; the offsets column stays valid either way (it accounts
#: for the separators), so the slicing fallback always works.
_LAYOUT_NL_KEYS = 0x0001


# ----------------------------------------------------------------------
# code-version fingerprint
# ----------------------------------------------------------------------
#: repro subpackages whose source feeds cell values (the metric path):
#: planners and protocol cores, PHY costing, DES execution, hashing,
#: tagset generation, baselines, analysis models, and the apps built on
#: them.  Presentation-only modules (figures, tables, reports, CLI) are
#: deliberately excluded — editing a plot label must not invalidate a
#: million cached cells.
_METRIC_PATH_DIRS = (
    "core", "phy", "sim", "hashing", "workloads", "baselines",
    "analysis", "apps", "kernels",
)
#: individual modules on the metric path: the runner defines the seed
#: derivation every cell value depends on, and the shm dataplane and
#: the remote transport hand workers the population columns and shard
#: payloads those values are computed from.
_METRIC_PATH_MODULES = ("io.py", "experiments/runner.py",
                        "experiments/shm.py", "experiments/remote.py")

_version_memo: str | None = None


def _metric_path_files() -> list[Path]:
    root = Path(__file__).resolve().parent.parent  # src/repro
    files: list[Path] = []
    for sub in _METRIC_PATH_DIRS:
        files.extend((root / sub).glob("*.py"))
    for mod in _METRIC_PATH_MODULES:
        files.append(root / mod)
    return sorted(f for f in files if f.exists())


def cache_version() -> str:
    """Fingerprint of the source files that feed sweep-cell values.

    A 16-hex-digit BLAKE2b digest over the (relative path, content) of
    every metric-path file, memoised per process.  Any edit to a
    planner, the PHY layer, the DES, a baseline, or the runner changes
    the fingerprint; cache keys are salted with it, so stale entries
    stop matching instead of being served.
    """
    global _version_memo
    if _version_memo is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.blake2b(digest_size=8)
        for f in _metric_path_files():
            try:  # package-relative names keep the digest install-stable
                name = str(f.relative_to(root))
            except ValueError:
                name = f.name
            h.update(name.encode())
            h.update(b"\0")
            h.update(f.read_bytes())
            h.update(b"\0")
        _version_memo = h.hexdigest()
    return _version_memo


# ----------------------------------------------------------------------
# segment encoding
# ----------------------------------------------------------------------
def _encode_segment(entries: list[tuple[str, float | list[float]]]) -> bytes:
    """Pack ``(key, value)`` pairs into one columnar segment."""
    keys = [k.encode("utf-8") for k, _ in entries]
    layout = 0
    if not any(b"\n" in k for k in keys):
        layout |= _LAYOUT_NL_KEYS
        key_blob = b"\n".join(keys)
        # offsets include the 1-byte separator after each key; slicing
        # recovers key i as blob[off[i] : off[i+1] - 1]
        lengths = [len(k) + 1 for k in keys]
    else:
        key_blob = b"".join(keys)
        lengths = [len(k) for k in keys]
    key_offsets = np.zeros(len(entries) + 1, dtype=np.uint64)
    np.cumsum(lengths, out=key_offsets[1:])

    flags = np.zeros(len(entries), dtype=np.uint8)
    chunks: list[list[float]] = []
    for i, (_, value) in enumerate(entries):
        if isinstance(value, (list, tuple)):
            flags[i] = _FLAG_LIST
            chunks.append([float(v) for v in value])
        else:
            chunks.append([float(value)])
    val_offsets = np.zeros(len(entries) + 1, dtype=np.uint64)
    np.cumsum([len(c) for c in chunks], out=val_offsets[1:])
    values = np.asarray(
        [v for c in chunks for v in c], dtype="<f8"
    )

    body = b"".join([
        _MAGIC,
        _HEADER.pack(_SEGMENT_FORMAT, layout, len(entries),
                     len(key_blob), values.size),
        key_offsets.astype("<u8").tobytes(),
        val_offsets.astype("<u8").tobytes(),
        flags.tobytes(),
        key_blob,
        values.tobytes(),
    ])
    return body + _FOOTER.pack(zlib.crc32(body), _TAIL)


def _decode_columns(
    raw: bytes,
    prefix: str | None = None,
) -> tuple[list[str], list[float | list[float]], int | None]:
    """Unpack a segment into parallel key/value columns.

    Raises ``ValueError`` on any framing damage: short file, wrong
    magic, length mismatch (torn tail), or checksum failure.

    With ``prefix``, the third element is the exact count of keys
    starting with it (``None`` otherwise).  In the newline layout the
    count is two C-level scans of the blob — ``\\n`` can only be a
    separator there — letting the loader skip the per-key filter when
    a segment is wholly live or wholly stale.
    """
    head_len = len(_MAGIC) + _HEADER.size
    if len(raw) < head_len + _FOOTER.size:
        raise ValueError("segment too short")
    if raw[: len(_MAGIC)] != _MAGIC:
        raise ValueError("bad segment magic")
    fmt, layout, n_entries, key_blob_len, n_values = _HEADER.unpack_from(
        raw, len(_MAGIC)
    )
    if fmt != _SEGMENT_FORMAT:
        raise ValueError(f"unsupported segment format {fmt}")
    off_bytes = (n_entries + 1) * 8
    body_len = (head_len + 2 * off_bytes + n_entries
                + key_blob_len + n_values * 8)
    if len(raw) != body_len + _FOOTER.size:
        raise ValueError("segment length mismatch (torn tail?)")
    crc, tail = _FOOTER.unpack_from(raw, body_len)
    if tail != _TAIL or crc != zlib.crc32(raw[:body_len]):
        raise ValueError("segment checksum mismatch")

    pos = head_len
    key_offsets = np.frombuffer(raw, dtype="<u8", count=n_entries + 1,
                                offset=pos)
    pos += off_bytes
    val_offsets = np.frombuffer(raw, dtype="<u8", count=n_entries + 1,
                                offset=pos)
    pos += off_bytes
    flags = np.frombuffer(raw, dtype=np.uint8, count=n_entries, offset=pos)
    pos += n_entries
    key_blob = raw[pos: pos + key_blob_len]
    pos += key_blob_len
    values = np.frombuffer(raw, dtype="<f8", count=n_values, offset=pos)

    if n_entries == 0:
        return [], [], (0 if prefix is not None else None)
    nl_layout = bool(layout & _LAYOUT_NL_KEYS)
    if nl_layout:
        keys = key_blob.decode("utf-8").split("\n")
        if len(keys) != n_entries:
            raise ValueError("key column count mismatch")
    else:
        # plain-int offset list: numpy scalar indexing in a 100k-entry
        # loop is ~10x slower than list indexing, and key offsets are
        # *byte* offsets so each slice is decoded individually
        ko = key_offsets.tolist()
        keys = [
            key_blob[ko[i]: ko[i + 1]].decode("utf-8")
            for i in range(n_entries)
        ]
    vals: list = values.tolist()
    if flags.any():
        vo = val_offsets.tolist()
        is_list = (flags & _FLAG_LIST).astype(bool).tolist()
        vals = [
            vals[vo[i]: vo[i + 1]] if is_list[i] else vals[vo[i]]
            for i in range(n_entries)
        ]
    n_prefixed: int | None = None
    if prefix is not None:
        if not prefix:
            n_prefixed = n_entries
        elif nl_layout:
            pb = prefix.encode("utf-8")
            n_prefixed = (int(key_blob.startswith(pb))
                          + key_blob.count(b"\n" + pb))
        else:
            n_prefixed = sum(1 for k in keys if k.startswith(prefix))
    return keys, vals, n_prefixed


def _decode_segment(raw: bytes) -> list[tuple[str, float | list[float]]]:
    """Unpack a segment; raises ``ValueError`` on any framing damage."""
    keys, vals, _ = _decode_columns(raw)
    return list(zip(keys, vals))


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
@dataclass
class StoreStats:
    """What ``load()`` found on disk (before and after compaction)."""

    n_segments: int = 0
    corrupt_segments: int = 0
    disk_entries: int = 0        #: entries parsed across all segments
    live_entries: int = 0        #: current-version, last-wins survivors
    stale_entries: int = 0       #: entries salted with another version
    duplicate_entries: int = 0   #: superseded writes of a live key
    migrated_entries: int = 0    #: adopted from a legacy cells.jsonl
    compacted: bool = False
    disk_bytes: int = 0

    @property
    def garbage_entries(self) -> int:
        return self.stale_entries + self.duplicate_entries


class CellStore:
    """Append-only columnar segment store for sweep-cell values.

    ``append`` buffers entries and seals a new segment every
    ``flush_threshold`` entries (and on :meth:`flush`); the sweep runner
    flushes after every sweep, so a crash costs at most the in-flight
    sweep's cells.  Only one process may write (the sweep parent), which
    is the same single-writer contract the JSON-lines store had.

    ``version_salt`` is the ``"v=<fingerprint>|"`` key prefix the owning
    cache applies: the store itself is key-agnostic for reads and
    writes, but uses the prefix to classify entries from other code
    versions as garbage for compaction.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        version_salt: str = "",
        flush_threshold: int = 2048,
        compact_garbage_fraction: float = 0.25,
        compact_min_garbage: int = 64,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.version_salt = version_salt
        self.flush_threshold = int(flush_threshold)
        self.compact_garbage_fraction = float(compact_garbage_fraction)
        self.compact_min_garbage = int(compact_min_garbage)
        self._buffer: list[tuple[str, float | list[float]]] = []
        self.stats = StoreStats()

    # -- paths ----------------------------------------------------------
    @property
    def legacy_path(self) -> Path:
        return self.directory / "cells.jsonl"

    def _segment_paths(self) -> list[Path]:
        return sorted(self.directory.glob("cells-*.seg"))

    def _next_segment_path(self) -> Path:
        paths = self._segment_paths()
        if not paths:
            seq = 0
        else:
            seq = max(int(p.stem.split("-")[1]) for p in paths) + 1
        return self.directory / f"cells-{seq:08d}.seg"

    # -- writing --------------------------------------------------------
    def append(self, key: str, value: float | list[float]) -> None:
        self._buffer.append((key, value))
        if len(self._buffer) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        """Seal buffered entries as one new segment (atomic write)."""
        if not self._buffer:
            return
        self._write_segment(self._buffer)
        self._buffer = []

    def _write_segment(
        self, entries: list[tuple[str, float | list[float]]]
    ) -> Path:
        target = self._next_segment_path()
        blob = _encode_segment(entries)
        tmp = target.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)  # atomic: never a half-written .seg
        return target

    # -- loading --------------------------------------------------------
    def load(self) -> dict[str, float | list[float]]:
        """Read every segment (+ legacy file), last-wins; maybe compact.

        Returns only **live** entries: the newest value per key, filtered
        to the current ``version_salt`` (entries from other code versions
        can never be served, so they are not kept in memory).  Corrupt or
        torn segments are skipped individually; leftover ``.tmp`` files
        from an interrupted write are ignored.
        """
        stats = StoreStats()
        salt = self.version_salt
        live: dict[str, float | list[float]] = {}
        key_columns: list[list[str]] = []
        any_stale = False
        for path in self._segment_paths():
            try:
                keys, vals, n_live = _decode_columns(
                    path.read_bytes(), prefix=salt
                )
            except (ValueError, OSError) as exc:
                stats.corrupt_segments += 1
                _log.warning("dropping corrupt cache segment %s: %s",
                             path.name, exc)
                continue
            stats.n_segments += 1
            stats.disk_entries += len(keys)
            key_columns.append(keys)
            # stale-version keys can never equal live keys (the salt is
            # part of the key), so filtering before the merge is exact;
            # wholly-live segments (the common case) skip it entirely
            if n_live == len(keys):
                live.update(zip(keys, vals))
            else:
                any_stale = True
                if n_live:
                    live.update(
                        (k, v) for k, v in zip(keys, vals)
                        if k.startswith(salt)
                    )

        migrated = self._migrate_legacy()
        if migrated:
            stats.migrated_entries = len(migrated)
            stats.disk_entries += len(migrated)
            key_columns.append(list(migrated))
            live.update(migrated)  # adopted under the current salt

        if any_stale:
            n_unique = len(set().union(*key_columns))
        else:
            # every source was wholly live, so ``live`` already merged
            # and deduplicated every key — no per-key set pass (keeps
            # the post-compaction steady-state load cheap)
            n_unique = len(live)
        stats.stale_entries = n_unique - len(live)
        stats.duplicate_entries = stats.disk_entries - n_unique
        stats.live_entries = len(live)
        stats.disk_bytes = sum(
            p.stat().st_size for p in self._segment_paths()
        )
        self.stats = stats
        garbage = stats.garbage_entries
        if (
            garbage >= self.compact_min_garbage
            and stats.disk_entries
            and garbage / stats.disk_entries > self.compact_garbage_fraction
        ):
            self.compact(live)
        return live

    def _migrate_legacy(self) -> dict[str, float | list[float]]:
        """Adopt a v1 ``cells.jsonl`` into the segment store.

        Legacy entries carry no code-version salt, so they are adopted
        under the *current* version (prefixing ``version_salt``) — the
        one-time cost of trusting a pre-versioning cache, after which
        every edit is tracked.  The JSON file is removed only after the
        replacement segment is durably written.
        """
        if not self.legacy_path.exists():
            return {}
        from repro.io import iter_jsonl_cells

        migrated: dict[str, float | list[float]] = {}
        for key, value in iter_jsonl_cells(self.legacy_path):
            if self.version_salt and not key.startswith("v="):
                key = self.version_salt + key
            migrated[key] = value
        if migrated:
            self._write_segment(list(migrated.items()))
        self.legacy_path.unlink()
        return migrated

    # -- compaction -----------------------------------------------------
    def compact(self, live: dict[str, float | list[float]]) -> None:
        """Rewrite ``live`` as one segment; drop every older segment.

        Crash-safe ordering: the consolidated segment (which sorts
        *after* the ones it replaces, so last-wins still resolves
        correctly) is fully on disk before any old file is unlinked.  A
        crash in between leaves duplicates, which the next load merges
        and re-compacts.
        """
        old = self._segment_paths()
        if live:
            self._write_segment(sorted(live.items()))
        for path in old:
            path.unlink(missing_ok=True)
        self.stats.compacted = True
        self.stats.n_segments = len(self._segment_paths())
        self.stats.disk_entries = len(live)
        self.stats.stale_entries = 0
        self.stats.duplicate_entries = 0
        self.stats.disk_bytes = sum(
            p.stat().st_size for p in self._segment_paths()
        )

    # -- inspection -----------------------------------------------------
    def describe(self) -> dict[str, int | float | str | bool]:
        """Stats dict for the ``repro-rfid cache`` subcommand."""
        s = self.stats
        return {
            "directory": str(self.directory),
            "segments": s.n_segments,
            "corrupt_segments": s.corrupt_segments,
            "disk_entries": s.disk_entries,
            "live_entries": s.live_entries,
            "stale_entries": s.stale_entries,
            "duplicate_entries": s.duplicate_entries,
            "migrated_entries": s.migrated_entries,
            "compacted": s.compacted,
            "disk_bytes": s.disk_bytes,
        }
