"""Multi-host distributed sweep execution over a socket transport.

The single-host dataplane (:mod:`repro.experiments.shm`) stops at the
machine boundary: shard blobs reach workers through a fork/spawn pipe
and populations ride ``/dev/shm``.  This module carries the *same*
shard payloads across a TCP socket instead, so a ``SweepRunner`` can
pack cells across every core of every machine that runs a host agent:

- **Framing.** A length-prefixed binary protocol: a fixed
  :data:`FRAME_HEADER` (magic, protocol version, flags, message type,
  wire length, raw length, CRC-32 of the wire payload) followed by the
  payload, zlib-compressed when it crosses
  ``REPRO_SHIP_COMPRESS_MIN`` bytes.  A corrupt frame fails its CRC
  and raises :class:`FrameError` instead of delivering garbage.  With
  ``REPRO_REMOTE_KEY`` set (same value on runner and agents), every
  frame also carries an HMAC-SHA256 tag that is verified *before* any
  payload byte is unpickled; because shard payloads are pickles —
  i.e. code execution for whoever can write to the socket — an agent
  refuses to bind a non-loopback address without a key.  The same
  threshold-gated codec (:func:`pack_blob` / :func:`unpack_blob`)
  compresses the *local* pool's shard blobs, so one code path owns
  shipment compression on every transport.
- **The host agent.** ``repro-rfid hostagent`` (or ``python -m
  repro.experiments.remote``) boots a persistent warm
  :class:`~repro.experiments.shm.WorkerPool` (kernel warm-up at birth,
  reused across sweeps and across client connections), measures its
  shard throughput once, and then serves shards: each ``SHARD`` frame
  is submitted to the pool and answered with a ``RESULT`` frame as it
  completes, out of order and pipelined.  The entry points are the
  runner's own ``_run_chunk_pickled`` / ``_run_batch_shard_pickled``
  (selected by a whitelisted name, never an unpickled callable), so a
  remote shard computes bit-identically to a local one.
- **The dispatcher.** The runner-side :class:`RemoteDispatcher` keeps
  one connection per configured host (``REPRO_HOSTS=host:port,...``),
  packs shards across hosts by predicted cost weighted with each
  host's core count and learned speed
  (:meth:`repro.experiments.costmodel.CostModel` host dimension), and
  survives failure: heartbeat pings on idle sockets, a per-shard
  timeout, and dead-host detection that reassigns the lost host's
  queued and in-flight shards to the surviving hosts — or to the local
  fallback when none survive.  Results are deduplicated first-wins by
  shard index, so a shard can never be lost or double-counted.

Shards are pure functions of their cell coordinates, so everything
here is an invisible transport by contract: values, cache keys, and
``CellStore`` bytes are bit-identical to local execution, and an
unreachable (or mid-sweep killed) agent degrades to the local pool
rather than failing the sweep.
"""

from __future__ import annotations

import argparse
import atexit
import hashlib
import hmac
import logging
import os
import pickle
import queue
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib
from collections import deque
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "FrameError",
    "HostAgent",
    "HostClient",
    "RemoteDispatcher",
    "PROTOCOL_VERSION",
    "close_dispatchers",
    "compress_min_bytes",
    "get_dispatcher",
    "live_host_count",
    "main",
    "pack_blob",
    "parse_hosts",
    "recv_frame",
    "resolve_key",
    "send_frame",
    "spawn_local_agent",
    "unpack_blob",
]

_log = logging.getLogger(__name__)

# ----------------------------------------------------------------------
# frame layout
# ----------------------------------------------------------------------
#: header: magic, version, flags, message type, wire payload length,
#: raw (uncompressed) payload length, CRC-32 of the wire payload
FRAME_HEADER = struct.Struct("<4sBBHIII")
MAGIC = b"RRFP"  # Repro Rfid Frame Protocol
PROTOCOL_VERSION = 1

#: frame flag bit: the wire payload is zlib-compressed
FLAG_ZLIB = 0x01
#: frame flag bit: a 32-byte HMAC-SHA256 tag follows the payload
FLAG_HMAC = 0x02

#: length of the per-frame authentication tag (HMAC-SHA256 digest)
AUTH_TAG_LEN = hashlib.sha256().digest_size

# message types
MSG_HELLO = 1   # agent -> client, on connect: {version, cores, pid, ...}
MSG_PING = 2    # either direction; answered with PONG
MSG_PONG = 3
MSG_SHARD = 4   # client -> agent: (shard_id, entry name, shard blob)
MSG_RESULT = 5  # agent -> client: (shard_id, entry return value)
MSG_ERROR = 6   # agent -> client: (shard_id, traceback string)
MSG_BYE = 7     # client -> agent: clean connection teardown

#: the only worker entry points a SHARD frame may name — the agent
#: never unpickles a callable off the wire
_ENTRY_NAMES = ("chunk", "batch")


class FrameError(RuntimeError):
    """A malformed, corrupt, or protocol-incompatible frame."""


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def resolve_key(key: str | bytes | None = None) -> bytes | None:
    """The shared frame-authentication secret, as bytes.

    ``None`` falls back to ``REPRO_REMOTE_KEY``; no key at all returns
    ``None`` (frames unauthenticated — loopback only, see
    :meth:`HostAgent.start`).  Shard payloads are pickles, and
    unpickling attacker bytes is arbitrary code execution, so every
    frame is HMAC-tagged with this key before either side will parse
    it whenever a key is configured.
    """
    if key is None:
        raw = os.environ.get("REPRO_REMOTE_KEY")
        key = raw if raw else None
    if key is None:
        return None
    return key.encode("utf-8") if isinstance(key, str) else bytes(key)


def _frame_tag(key: bytes, header: bytes, wire: bytes) -> bytes:
    """HMAC-SHA256 over the whole frame as sent (header + wire payload),
    so neither the payload nor any header field can be forged."""
    return hmac.new(key, header + wire, hashlib.sha256).digest()


def _is_loopback(bind: str) -> bool:
    return bind == "localhost" or bind == "::1" or bind.startswith("127.")


def compress_min_bytes() -> int:
    """Payloads at or above this size ship zlib-compressed
    (``REPRO_SHIP_COMPRESS_MIN``, default 4 KiB; 0 compresses all)."""
    raw = os.environ.get("REPRO_SHIP_COMPRESS_MIN")
    return int(raw) if raw else 4096


def _maybe_compress(raw: bytes, threshold: int | None = None) -> tuple[bytes, int]:
    """``(wire bytes, flags)`` — compressed iff it crosses the threshold
    *and* compression actually shrinks it (incompressible column bytes
    ship raw rather than paying deflate for nothing)."""
    threshold = compress_min_bytes() if threshold is None else threshold
    if len(raw) >= threshold:
        packed = zlib.compress(raw)
        if len(packed) < len(raw):
            return packed, FLAG_ZLIB
    return raw, 0


# -- blob codec (shared by the socket frames and the local pool) -------
_TAG_RAW = b"\x00"
_TAG_ZLIB = b"\x01"


def pack_blob(raw: bytes, threshold: int | None = None) -> bytes:
    """Tag-prefixed, threshold-gated zlib packing of a shard blob.

    This is the codec the *local* pool ships through as well: one byte
    of tag (raw vs zlib) followed by the payload, so
    ``bytes_shipped`` counts what actually crossed the boundary and
    large shard blobs stop shipping as raw pickles.
    """
    wire, flags = _maybe_compress(raw, threshold)
    return (_TAG_ZLIB if flags else _TAG_RAW) + wire


def unpack_blob(blob: bytes) -> bytes:
    """Inverse of :func:`pack_blob` (worker side, any transport)."""
    tag, payload = blob[:1], blob[1:]
    if tag == _TAG_RAW:
        return payload
    if tag == _TAG_ZLIB:
        return zlib.decompress(payload)
    raise FrameError(f"unknown shard blob tag {tag!r}")


# ----------------------------------------------------------------------
# frame I/O
# ----------------------------------------------------------------------
def send_frame(
    sock: socket.socket,
    mtype: int,
    payload: bytes,
    key: bytes | None = None,
) -> int:
    """Write one frame; returns the wire bytes sent (header + payload).

    With ``key`` the frame carries :data:`FLAG_HMAC` and a trailing
    HMAC-SHA256 tag over header + payload; the receiver must hold the
    same key or it rejects the frame (and vice versa).
    """
    wire, flags = _maybe_compress(payload)
    if key:
        flags |= FLAG_HMAC
    header = FRAME_HEADER.pack(
        MAGIC, PROTOCOL_VERSION, flags, mtype,
        len(wire), len(payload), zlib.crc32(wire),
    )
    tag = _frame_tag(key, header, wire) if key else b""
    sock.sendall(header + wire + tag)
    return FRAME_HEADER.size + len(wire) + len(tag)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise (EOF -> :class:`FrameError`;
    a socket timeout propagates so callers can heartbeat)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, key: bytes | None = None
) -> tuple[int, bytes, int]:
    """Read one frame; returns ``(message type, payload, wire bytes)``.

    Validates magic, protocol version, the HMAC tag (when a ``key`` is
    configured — *before* the payload is decompressed or handed to any
    deserializer), and the payload CRC — a flipped bit, a forged frame,
    or a foreign protocol on the port raises :class:`FrameError`
    instead of handing pickled garbage downstream.  Key presence must
    match on both sides: an authenticated frame without a local key, or
    a bare frame when this side holds a key, is rejected.
    """
    header = _recv_exact(sock, FRAME_HEADER.size)
    magic, version, flags, mtype, wire_len, raw_len, crc = (
        FRAME_HEADER.unpack(header)
    )
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    wire = _recv_exact(sock, wire_len)
    tag = _recv_exact(sock, AUTH_TAG_LEN) if flags & FLAG_HMAC else b""
    if key:
        if not flags & FLAG_HMAC:
            raise FrameError(
                "peer sent an unauthenticated frame but this side has a "
                "shared key (REPRO_REMOTE_KEY) configured"
            )
        if not hmac.compare_digest(tag, _frame_tag(key, header, wire)):
            raise FrameError(
                "frame failed HMAC authentication (shared key mismatch?)"
            )
    elif flags & FLAG_HMAC:
        raise FrameError(
            "peer requires frame authentication; set the same "
            "REPRO_REMOTE_KEY on this side"
        )
    if zlib.crc32(wire) != crc:
        raise FrameError("frame payload failed its CRC check")
    payload = zlib.decompress(wire) if flags & FLAG_ZLIB else wire
    if len(payload) != raw_len:
        raise FrameError(
            f"frame decompressed to {len(payload)} bytes, header "
            f"promised {raw_len}"
        )
    return mtype, payload, FRAME_HEADER.size + wire_len + len(tag)


# ----------------------------------------------------------------------
# host addresses
# ----------------------------------------------------------------------
def parse_hosts(hosts: str | Sequence[str] | None) -> tuple[str, ...]:
    """Normalise ``REPRO_HOSTS``-style input to ``("host:port", ...)``.

    Accepts a comma-separated string or a sequence; every entry must be
    ``host:port`` with an integer port.  Empty input -> ``()``.
    """
    if hosts is None:
        return ()
    if isinstance(hosts, str):
        entries: Iterable[str] = hosts.split(",")
    else:
        entries = hosts
    out: list[str] = []
    for entry in entries:
        entry = entry.strip()
        if not entry:
            continue
        host, sep, port = entry.rpartition(":")
        if not sep or not host:
            raise ValueError(f"host entry {entry!r} is not host:port")
        try:
            port_no = int(port)
        except ValueError:
            raise ValueError(f"host entry {entry!r} has a non-integer port")
        if not 0 < port_no < 65536:
            raise ValueError(f"host entry {entry!r} port out of range")
        out.append(f"{host}:{port_no}")
    return tuple(out)


def _split_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    return host, int(port)


# ----------------------------------------------------------------------
# worker entry points (shared with the local pool)
# ----------------------------------------------------------------------
def _entry(name: str) -> Callable[[bytes], Any]:
    """Resolve a whitelisted shard entry point by name (lazily, so this
    module never imports the runner at import time)."""
    from repro.experiments import runner

    table = {
        "chunk": runner._run_chunk_pickled,
        "batch": runner._run_batch_shard_pickled,
    }
    if name not in table:
        raise FrameError(f"unknown shard entry {name!r}")
    return table[name]


def measure_throughput(reps: int = 3, n: int = 2048) -> float:
    """Cells-per-second-ish throughput of this machine on a small
    representative shard (an HPP plan), advertised in HELLO so a
    dispatcher can seed the cost model's host-speed table before any
    shard has run."""
    import numpy as np

    from repro.core.hpp import HPP
    from repro.workloads.tagsets import uniform_tagset

    tags = uniform_tagset(n, np.random.default_rng(0))
    proto = HPP()
    proto.plan(tags, np.random.default_rng(1))  # untimed warm-up
    best = float("inf")
    for rep in range(reps):
        t0 = time.perf_counter()
        proto.plan(tags, np.random.default_rng(2 + rep))
        best = min(best, time.perf_counter() - t0)
    return 1.0 / max(best, 1e-9)


# ----------------------------------------------------------------------
# the host agent (server side)
# ----------------------------------------------------------------------
class HostAgent:
    """Serve this machine's cores to remote ``SweepRunner`` dispatchers.

    Boots the persistent warm worker pool once (kernel warm-up at
    birth; the same pool the local dataplane uses, reused across every
    sweep and client connection), measures shard throughput, then
    accepts connections: one daemon thread per client, shards pipelined
    through the pool and answered as they complete.  A broken pool
    (worker SIGKILLed mid-shard) re-runs the lost shard in-process and
    respawns the pool for the next one, so one crashed worker never
    fails a client's sweep.
    """

    def __init__(
        self,
        bind: str = "127.0.0.1",
        port: int = 0,
        jobs: int | None = None,
        key: str | bytes | None = None,
    ) -> None:
        self.bind = bind
        self.port = int(port)
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        self.key = resolve_key(key)
        self._listener: socket.socket | None = None
        self._stop = threading.Event()
        self._conn_threads: list[threading.Thread] = []
        self.throughput = 0.0
        self.shards_served = 0

    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind the listener, warm the pool, measure throughput.

        Returns ``(host, port)`` — with ``port=0`` the kernel picks an
        ephemeral port, which is how tests and the smoke script run
        several agents on one machine.

        A non-loopback bind without a shared key is refused outright:
        shard frames carry pickled payloads, and unpickling
        unauthenticated network bytes is arbitrary code execution.
        """
        if self.key is None and not _is_loopback(self.bind):
            raise RuntimeError(
                f"refusing to bind {self.bind!r} without a shared key: "
                "shard frames carry pickled payloads, so an open "
                "unauthenticated port is remote code execution for "
                "anyone who can reach it. Set the same REPRO_REMOTE_KEY "
                "on this agent and on the sweep runner, or bind "
                "loopback."
            )
        from repro.experiments import shm
        from repro.kernels import warmup

        # pool before listener: fork-start workers inherit every open
        # fd, and a worker holding the listening socket would keep the
        # port alive after the agent itself is SIGKILLed
        warmup()  # agent-process kernels (the throughput probe runs here)
        shm.get_worker_pool(self.jobs)  # warm pool born before first shard
        self.throughput = measure_throughput()
        self._listener = socket.create_server(
            (self.bind, self.port), backlog=8,
        )
        self.port = self._listener.getsockname()[1]
        return self.bind, self.port

    def serve_forever(self) -> None:
        """Accept-and-serve loop; returns after :meth:`shutdown`."""
        if self._listener is None:
            self.start()
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:  # listener closed by shutdown()
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, addr),
                daemon=True, name=f"hostagent-{addr[0]}:{addr[1]}",
            )
            thread.start()
            self._conn_threads.append(thread)

    def shutdown(self) -> None:
        """Stop accepting, close the listener, dispose the pool."""
        from repro.experiments import shm

        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._listener = None
        shm.shutdown_worker_pool()

    # ------------------------------------------------------------------
    def _hello_payload(self) -> bytes:
        return pickle.dumps({
            "version": PROTOCOL_VERSION,
            "cores": self.jobs,
            "pid": os.getpid(),
            "throughput": self.throughput,
        })

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        """One client: HELLO, then shards in / results out, pipelined.

        A sender thread drains an outbound queue so slow result writes
        never block shard intake; pool futures enqueue their result
        frame from their completion callback.
        """
        out: queue.Queue = queue.Queue()
        stop = object()

        def _sender() -> None:
            while True:
                item = out.get()
                if item is stop:
                    return
                mtype, payload = item
                try:
                    send_frame(conn, mtype, payload, self.key)
                except OSError:
                    return

        sender = threading.Thread(target=_sender, daemon=True)
        sender.start()
        try:
            send_frame(conn, MSG_HELLO, self._hello_payload(), self.key)
            conn.settimeout(None)
            while not self._stop.is_set():
                try:
                    # the HMAC check inside recv_frame runs before any
                    # pickle.loads below — an unauthenticated or forged
                    # frame drops the connection here
                    mtype, payload, _ = recv_frame(conn, self.key)
                except (FrameError, OSError):
                    break
                if mtype == MSG_PING:
                    out.put((MSG_PONG, payload))
                elif mtype == MSG_SHARD:
                    shard_id, entry_name, blob = pickle.loads(payload)
                    self._submit_shard(out, shard_id, entry_name, blob)
                elif mtype == MSG_BYE:
                    break
        finally:
            out.put(stop)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _submit_shard(
        self, out: queue.Queue, shard_id: int, entry_name: str, blob: bytes
    ) -> None:
        """Hand one shard to the warm pool; queue its RESULT on completion."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.experiments import shm

        def _finish(result: Any) -> None:
            self.shards_served += 1
            out.put((MSG_RESULT, pickle.dumps((shard_id, result))))

        def _fail(exc: BaseException) -> None:
            out.put((MSG_ERROR, pickle.dumps((shard_id, repr(exc)))))

        def _run_inline() -> None:
            # pool died mid-shard: shards are pure, so re-run in-process
            # (slow but correct) and let the next shard respawn the pool
            try:
                _finish(_entry(entry_name)(blob))
            except Exception as exc:
                _fail(exc)

        def _done(future) -> None:
            exc = future.exception()
            if exc is None:
                _finish(future.result())
            elif isinstance(exc, BrokenProcessPool):
                _run_inline()
            else:
                _fail(exc)

        try:
            pool, _ = shm.get_worker_pool(self.jobs)
            pool.submit(_entry(entry_name), blob).add_done_callback(_done)
        except Exception:  # pool unspawnable: degrade to inline execution
            _run_inline()


# ----------------------------------------------------------------------
# the client side
# ----------------------------------------------------------------------
class HostClient:
    """One live connection to a host agent (driven by one thread)."""

    def __init__(
        self,
        address: str,
        connect_timeout: float | None = None,
        key: str | bytes | None = None,
    ):
        self.address = address
        host, port = _split_address(address)
        timeout = (
            connect_timeout if connect_timeout is not None
            else _env_float("REPRO_REMOTE_CONNECT_TIMEOUT", 3.0)
        )
        self.key = resolve_key(key)
        #: sends get their own generous timeout: a multi-hundred-MB
        #: inline-manifest blob on a slow link can legitimately take far
        #: longer than the connect/heartbeat timeouts that otherwise
        #: linger on the socket, and a timeout mid-send means a
        #: spuriously declared-dead host
        self.send_timeout = _env_float("REPRO_REMOTE_SEND_TIMEOUT", 120.0)
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.dead = False
        self.inflight: set[int] = set()
        self.last_activity = time.monotonic()
        try:
            mtype, payload, wire = recv_frame(self.sock, self.key)
        except (FrameError, OSError):
            self.sock.close()
            raise
        self.bytes_received += wire
        if mtype != MSG_HELLO:
            self.sock.close()
            raise FrameError(f"expected HELLO, got message type {mtype}")
        hello = pickle.loads(payload)
        if hello.get("version") != PROTOCOL_VERSION:  # pragma: no cover
            self.sock.close()
            raise FrameError(
                f"agent {address} speaks protocol "
                f"{hello.get('version')}, not {PROTOCOL_VERSION}"
            )
        self.cores = max(1, int(hello.get("cores", 1)))
        self.throughput = float(hello.get("throughput", 0.0))
        self.agent_pid = int(hello.get("pid", 0))

    def send(self, mtype: int, payload: bytes) -> None:
        self.sock.settimeout(self.send_timeout)
        self.bytes_sent += send_frame(self.sock, mtype, payload, self.key)

    def recv(self, timeout: float) -> tuple[int, bytes]:
        """One frame, or ``socket.timeout`` after ``timeout`` seconds."""
        self.sock.settimeout(timeout)
        mtype, payload, wire = recv_frame(self.sock, self.key)
        self.bytes_received += wire
        self.last_activity = time.monotonic()
        return mtype, payload

    def close(self, polite: bool = True) -> None:
        self.dead = True
        try:
            if polite:
                send_frame(self.sock, MSG_BYE, b"", self.key)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _HostDead(RuntimeError):
    """Raised inside a host loop when its agent stops answering."""


class RemoteDispatcher:
    """Ships shard blobs to host agents, packed by cost, with failover.

    One dispatcher per configured hosts tuple, kept for the life of the
    process (connections persist across sweeps, like the warm pool).
    ``run()`` is the whole contract: given blobs and predicted costs it
    returns every shard's entry-point result in shard order — computed
    remotely where possible, reassigned on host death, and degraded to
    the ``local_fallback`` callable when every agent is gone.
    """

    def __init__(
        self,
        hosts: Sequence[str],
        heartbeat: float | None = None,
        shard_timeout: float | None = None,
        retry_seconds: float | None = None,
    ) -> None:
        self.hosts = tuple(hosts)
        self.heartbeat = (
            heartbeat if heartbeat is not None
            else _env_float("REPRO_REMOTE_HEARTBEAT", 5.0)
        )
        self.shard_timeout = (
            shard_timeout if shard_timeout is not None
            else _env_float("REPRO_REMOTE_TIMEOUT", 600.0)
        )
        self.retry_seconds = (
            retry_seconds if retry_seconds is not None
            else _env_float("REPRO_REMOTE_RETRY", 30.0)
        )
        self.clients: dict[str, HostClient] = {}
        self._down_since: dict[str, float] = {}
        self.failovers = 0
        self.shards_dispatched = 0
        #: per-host ``(completed predicted cost, busy core-seconds)`` of
        #: the most recent :meth:`run` — dispatcher-side wall clock, so
        #: network and serialization time are inside (see
        #: :meth:`CostModel.observe_host`)
        self.last_host_stats: dict[str, tuple[float, float]] = {}
        self._run_lock = threading.Lock()

    # -- connections ---------------------------------------------------
    def connect(self) -> int:
        """(Re)connect every host not already live; returns live count.

        A host that refused is not retried for ``retry_seconds`` — the
        dispatcher is consulted every sweep, and paying a connect
        timeout per sweep for a machine that is down would ruin the
        local fallback.
        """
        now = time.monotonic()
        for address in self.hosts:
            client = self.clients.get(address)
            if client is not None and not client.dead:
                continue
            if now - self._down_since.get(address, -1e18) < self.retry_seconds:
                continue
            try:
                self.clients[address] = HostClient(address)
                self._down_since.pop(address, None)
            except (OSError, FrameError) as exc:
                self.clients.pop(address, None)
                self._down_since[address] = now
                _log.warning("host agent %s not answering: %s", address, exc)
        return len(self.live())

    def live(self) -> dict[str, HostClient]:
        return {a: c for a, c in self.clients.items() if not c.dead}

    def total_cores(self) -> int:
        return sum(c.cores for c in self.live().values())

    def wire_bytes(self) -> tuple[int, int]:
        """Cumulative ``(sent, received)`` across all clients ever."""
        sent = sum(c.bytes_sent for c in self.clients.values())
        received = sum(c.bytes_received for c in self.clients.values())
        return sent, received

    def close(self) -> None:
        for client in self.clients.values():
            client.close()
        self.clients.clear()

    # -- dispatch ------------------------------------------------------
    def run(
        self,
        entry_name: str,
        blobs: Sequence[bytes],
        costs: Sequence[float],
        capacities: dict[str, float],
        local_fallback: Callable[[bytes], Any],
    ) -> list[tuple[Any, str]] | None:
        """Execute every blob through ``entry_name``; ``None`` = no hosts.

        Returns ``[(entry result, host address or "local"), ...]`` in
        shard order.  ``capacities`` weights the cost packing per host
        (cores x learned speed).  Any shard whose host dies — or whose
        agent reports an error — is reassigned to the surviving hosts,
        or computed through ``local_fallback``; ``failovers`` counts
        the reassignments.
        """
        if entry_name not in _ENTRY_NAMES:
            raise ValueError(f"unknown entry {entry_name!r}")
        with self._run_lock:
            live = self.live()
            if not live:
                return None
            state = _DispatchState(len(blobs))
            state.capacities = dict(capacities)
            addresses = [a for a in live if capacities.get(a, 0) > 0] or list(live)
            assignment = _assign_by_capacity(
                costs, addresses, {a: capacities.get(a, 1.0) for a in addresses},
            )
            for address, idxs in assignment.items():
                state.queues[address] = deque(idxs)
            threads = []
            for address in addresses:
                t = threading.Thread(
                    target=self._host_loop,
                    args=(live[address], state, entry_name, blobs, costs),
                    daemon=True, name=f"dispatch-{address}",
                )
                t.start()
                threads.append(t)
            self.shards_dispatched += len(blobs)
            # the main thread is the local fallback lane: it drains
            # shards that lost their host when no agent could take them
            while not state.finished():
                idx = state.pop_local()
                if idx is not None:
                    state.complete(idx, local_fallback(blobs[idx]), "local")
                    continue
                if not any(t.is_alive() for t in threads):
                    # every host thread exited; anything not completed
                    # (all hosts died at once) falls back locally
                    state.drain_unfinished_to_local()
                    idx = state.pop_local()
                    if idx is None and not state.finished():
                        raise RuntimeError(  # pragma: no cover - invariant
                            "dispatch stalled with unfinished shards")
                    if idx is not None:
                        state.complete(idx, local_fallback(blobs[idx]), "local")
                    continue
                state.wait(0.05)
            for t in threads:
                t.join(timeout=self.heartbeat + 1.0)
            self.failovers += state.failovers
            self.last_host_stats = dict(state.host_stats)
            return [
                (result, host)
                for result, host in state.results  # type: ignore[misc]
            ]

    # ------------------------------------------------------------------
    def _host_loop(
        self,
        client: HostClient,
        state: "_DispatchState",
        entry_name: str,
        blobs: Sequence[bytes],
        costs: Sequence[float],
    ) -> None:
        """Drive one host: send queued shards, read results, heartbeat.

        Exits when every shard (globally) is done.  Any socket error or
        an exceeded per-shard timeout declares the host dead and hands
        its unfinished shards back for reassignment.

        Every shard joins ``client.inflight`` *before* its SHARD frame
        is written: a send that dies halfway (EPIPE, send timeout) must
        leave the shard somewhere the dead-host handler's pending set
        can see, or it would be lost and the run would never finish.

        The loop also clocks the host from this side: busy core-seconds
        (wall time weighted by in-flight shards, capped at the host's
        cores) and the predicted cost it completed, recorded into
        ``state.host_stats`` so the cost model learns *round-trip*
        speed — serialization and network time included, which is the
        point: a fast host behind a slow link should be packed like a
        slow host.
        """
        address = client.address
        cost_done = 0.0
        core_seconds = 0.0
        last_tick = time.monotonic()

        def _accrue() -> None:
            # charge the interval since the last event at the host's
            # current occupancy (shards in flight, capped at its cores)
            nonlocal core_seconds, last_tick
            now = time.monotonic()
            core_seconds += (
                min(len(client.inflight), client.cores) * (now - last_tick)
            )
            last_tick = now

        try:
            while True:
                idx = state.next_for(address)
                while idx is not None:
                    _accrue()
                    client.inflight.add(idx)  # before send: see docstring
                    client.send(MSG_SHARD, pickle.dumps(
                        (idx, entry_name, bytes(blobs[idx]))))
                    client.last_activity = time.monotonic()
                    idx = state.next_for(address)
                if not client.inflight:
                    if state.finished():
                        state.record_host(address, cost_done, core_seconds)
                        return
                    _accrue()  # idle: the wait below accrues nothing
                    state.wait(0.05)  # idle: await reassignment or the end
                    continue
                try:
                    mtype, payload = client.recv(self.heartbeat)
                except socket.timeout:
                    idle = time.monotonic() - client.last_activity
                    if idle > self.shard_timeout:
                        raise _HostDead(
                            f"no result from {address} in {idle:.0f}s "
                            f"with {len(client.inflight)} shard(s) in flight"
                        )
                    client.send(MSG_PING, b"")
                    continue
                if mtype == MSG_RESULT:
                    shard_id, result = pickle.loads(payload)
                    _accrue()
                    client.inflight.discard(shard_id)
                    if state.complete(shard_id, result, address):
                        cost_done += costs[shard_id]
                elif mtype == MSG_ERROR:
                    shard_id, message = pickle.loads(payload)
                    _log.warning("host %s failed shard %d: %s",
                                 address, shard_id, message)
                    _accrue()
                    client.inflight.discard(shard_id)
                    state.push_local(shard_id)
                elif mtype == MSG_PONG:
                    pass
        except (_HostDead, FrameError, OSError, EOFError) as exc:
            pending = sorted(
                set(client.inflight) | set(state.take_queue(address))
            )
            pending = [i for i in pending if not state.done(i)]
            client.close(polite=False)
            self._down_since[address] = time.monotonic()
            _log.warning(
                "host agent %s died mid-sweep (%s); reassigning %d shard(s)",
                address, exc, len(pending),
            )
            self._reassign(pending, state, costs)

    def _reassign(
        self,
        pending: Sequence[int],
        state: "_DispatchState",
        costs: Sequence[float],
    ) -> None:
        """Move a dead host's shards to the survivors (or the local lane).

        Survivor capacities are the run's own (cores x learned speed),
        so post-failover packing weighs a slow host exactly like the
        initial assignment did; cores alone are the fallback for a host
        the cost model has never seen.
        """
        if not pending:
            return
        state.failovers += len(pending)
        survivors = {
            a: c for a, c in self.live().items() if a in state.queues
        }
        if not survivors:
            for idx in pending:
                state.push_local(idx)
            return
        assignment = _assign_by_capacity(
            [costs[i] for i in pending], list(survivors),
            {a: state.capacities.get(a, float(c.cores))
             for a, c in survivors.items()},
        )
        remap = {i: idx for i, idx in enumerate(pending)}
        for address, positions in assignment.items():
            state.extend_queue(address, [remap[p] for p in positions])
        state.notify()


class _DispatchState:
    """Shared bookkeeping of one ``RemoteDispatcher.run`` call."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.results: list[tuple[Any, str] | None] = [None] * n
        self.completed = 0
        self.failovers = 0
        self.queues: dict[str, deque[int]] = {}
        self.local: deque[int] = deque()
        #: the run's per-host capacities (cores x learned speed), kept
        #: so failover reassignment packs with the same weights
        self.capacities: dict[str, float] = {}
        #: per-host (completed predicted cost, busy core-seconds),
        #: recorded by each host loop on clean exit
        self.host_stats: dict[str, tuple[float, float]] = {}
        self._cond = threading.Condition()

    def finished(self) -> bool:
        with self._cond:
            return self.completed >= self.n

    def done(self, idx: int) -> bool:
        with self._cond:
            return self.results[idx] is not None

    def next_for(self, address: str) -> int | None:
        with self._cond:
            q = self.queues.get(address)
            while q:
                idx = q.popleft()
                if self.results[idx] is None:
                    return idx
            return None

    def take_queue(self, address: str) -> list[int]:
        with self._cond:
            q = self.queues.pop(address, None)
            return list(q) if q else []

    def extend_queue(self, address: str, idxs: Sequence[int]) -> None:
        with self._cond:
            self.queues.setdefault(address, deque()).extend(idxs)

    def push_local(self, idx: int) -> None:
        with self._cond:
            if self.results[idx] is None:
                self.local.append(idx)
            self._cond.notify_all()

    def pop_local(self) -> int | None:
        with self._cond:
            while self.local:
                idx = self.local.popleft()
                if self.results[idx] is None:
                    return idx
            return None

    def drain_unfinished_to_local(self) -> None:
        with self._cond:
            queued = {i for q in self.queues.values() for i in q}
            for q in self.queues.values():
                q.clear()
            missing = {
                i for i in range(self.n) if self.results[i] is None
            }
            self.local.extend(sorted((queued | missing) - set(self.local)))
            self._cond.notify_all()

    def record_host(self, address: str, cost_done: float,
                    core_seconds: float) -> None:
        with self._cond:
            if cost_done > 0 and core_seconds > 0:
                self.host_stats[address] = (cost_done, core_seconds)

    def complete(self, idx: int, result: Any, host: str) -> bool:
        """First result wins; duplicates (a slow host declared dead that
        answered anyway) are dropped so no cell is ever double-counted.
        Returns whether this call was the winner."""
        with self._cond:
            if self.results[idx] is not None:
                return False
            self.results[idx] = (result, host)
            self.completed += 1
            self._cond.notify_all()
            return True

    def wait(self, timeout: float) -> None:
        with self._cond:
            self._cond.wait(timeout)

    def notify(self) -> None:
        with self._cond:
            self._cond.notify_all()


def _assign_by_capacity(
    costs: Sequence[float],
    addresses: Sequence[str],
    capacities: dict[str, float],
) -> dict[str, list[int]]:
    """LPT across hosts: heaviest shard to the host whose *normalised*
    finish time stays lowest (see
    :func:`repro.experiments.costmodel.assign_to_hosts`)."""
    from repro.experiments.costmodel import assign_to_hosts

    owner = assign_to_hosts(
        costs, [max(capacities.get(a, 1.0), 1e-9) for a in addresses]
    )
    out: dict[str, list[int]] = {a: [] for a in addresses}
    for idx, host_no in enumerate(owner):
        out[addresses[host_no]].append(idx)
    return out


# ----------------------------------------------------------------------
# process-global dispatchers (runner side)
# ----------------------------------------------------------------------
_dispatchers: dict[tuple[str, ...], RemoteDispatcher] = {}
_warned_unreachable: set[tuple[str, ...]] = set()


def get_dispatcher(hosts: Sequence[str]) -> RemoteDispatcher | None:
    """The process-wide dispatcher for ``hosts`` with >= 1 live agent,
    or ``None`` (clean local fallback) when no agent answers."""
    key = parse_hosts(tuple(hosts))
    if not key:
        return None
    dispatcher = _dispatchers.get(key)
    if dispatcher is None:
        if not _dispatchers:
            atexit.register(close_dispatchers)
        dispatcher = _dispatchers[key] = RemoteDispatcher(key)
    if dispatcher.connect() == 0:
        if key not in _warned_unreachable:
            _warned_unreachable.add(key)
            _log.warning(
                "no host agent answered on %s; sweeps fall back to the "
                "local pool", ",".join(key),
            )
        return None
    _warned_unreachable.discard(key)
    return dispatcher


def live_host_count(hosts: Sequence[str]) -> int:
    """Live connections for ``hosts`` — observability only; never
    connects (``0`` when the dispatcher was never consulted)."""
    dispatcher = _dispatchers.get(parse_hosts(tuple(hosts)))
    return len(dispatcher.live()) if dispatcher else 0


def close_dispatchers() -> None:
    """Close every cached dispatcher's connections (idempotent)."""
    while _dispatchers:
        _, dispatcher = _dispatchers.popitem()
        dispatcher.close()


# ----------------------------------------------------------------------
# agent process helpers (tests, benches, smoke)
# ----------------------------------------------------------------------
_LISTENING = "hostagent listening on "


def spawn_local_agent(
    jobs: int = 1,
    env: dict[str, str] | None = None,
    boot_timeout: float = 60.0,
) -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro.experiments.remote`` on an ephemeral
    localhost port; returns ``(process, "127.0.0.1:port")`` once the
    agent prints its listening line.  The caller owns the process."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    child_env = dict(os.environ if env is None else env)
    child_env["PYTHONPATH"] = src + os.pathsep + child_env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.remote",
         "--port", "0", "--jobs", str(jobs)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=child_env,
    )
    deadline = time.monotonic() + boot_timeout
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith(_LISTENING):
            return proc, line[len(_LISTENING):].strip()
    proc.kill()
    raise RuntimeError("host agent failed to boot")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.remote`` / ``repro-rfid hostagent``."""
    import signal

    parser = argparse.ArgumentParser(
        prog="repro-rfid hostagent",
        description="Serve this machine's cores to remote SweepRunners "
                    "(REPRO_HOSTS=host:port,... on the runner side).",
    )
    parser.add_argument("--bind", default="127.0.0.1", metavar="ADDR",
                        help="address to listen on (default loopback; a "
                             "non-loopback bind requires the same "
                             "REPRO_REMOTE_KEY here and on the runner)")
    parser.add_argument("--port", type=int, default=7355, metavar="P",
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all cores)")
    args = parser.parse_args(argv)

    agent = HostAgent(bind=args.bind, port=args.port, jobs=args.jobs)
    try:
        host, port = agent.start()
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{_LISTENING}{host}:{port}", flush=True)
    print(f"# {agent.jobs} warm worker(s), "
          f"~{agent.throughput:.0f} probe-plans/s, frame auth "
          f"{'HMAC-SHA256' if agent.key else 'off (loopback only)'}",
          flush=True)

    def _terminate(signum, frame):  # pragma: no cover - signal path
        agent.shutdown()

    signal.signal(signal.SIGTERM, _terminate)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        agent.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
