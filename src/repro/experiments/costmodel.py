"""Predicted per-cell sweep cost: a small learned table, updated online.

The sweep runner packs cells into worker shards.  Equal-*count* shards
are badly balanced on heterogeneous grids: one EHPP cell costs roughly
an order of magnitude more than an HPP cell at the same ``n``, so a
chunk of mixed cells straggles on its slowest member while other
workers idle.  :class:`CostModel` supplies the per-cell weight the
packing needs:

- **Table.** One predicted cost (arbitrary but mutually consistent
  units — only ratios matter for packing) per ``(protocol, n-bucket)``,
  with buckets at powers of two of the population size.
- **Seeding.** On first use the model reads the committed
  ``BENCH_engine.json`` aggregates: the ``test_cell_batched[<proto>]``
  medians measure exactly one sweep column per protocol, which fixes the
  protocol-to-protocol ratios.  Without a bench file a built-in ratio
  table (EHPP ~ 10x HPP) applies, and unknown protocols fall back to a
  cost linear in ``n``.
- **Online updates.** After every computed shard the runner reports
  ``(protocol, cells, elapsed)``; the model spreads the elapsed time
  over the shard's cells proportionally to their current predictions and
  updates each touched bucket by exponential moving average.  The table
  therefore converges to the machine it is actually running on, and can
  be persisted next to the cell cache (``costs.json``) so later
  processes start warm.

Predictions never affect *values* — cells are pure functions of their
coordinates — only which worker computes which cell, so a wildly wrong
cost model costs wall-clock time, never correctness.
"""

from __future__ import annotations

import json
import logging
import math
import os
from pathlib import Path
from typing import Sequence

__all__ = ["CostModel", "balanced_contiguous_bounds", "greedy_shards"]

_log = logging.getLogger(__name__)

#: fallback protocol weights relative to HPP (per cell, same n); the
#: bench seeds override these with measured ratios when available
_DEFAULT_RELATIVE_COST = {
    "HPP": 1.0,
    "TPP": 1.8,
    "EHPP": 10.0,
    "CPP": 1.2,
    "CP": 1.2,
    "eCPP": 1.5,
    "MIC": 1.5,
}
#: bench cases whose medians seed the protocol ratios: one batched
#: sweep column per protocol (see benchmarks/test_bench_batch.py)
_BENCH_SEED_CASES = {
    "HPP": "benchmarks/test_bench_batch.py::test_cell_batched[hpp]",
    "TPP": "benchmarks/test_bench_batch.py::test_cell_batched[tpp]",
    "EHPP": "benchmarks/test_bench_batch.py::test_cell_batched[ehpp]",
}
#: EMA weight of a fresh observation against the current estimate
_EMA_ALPHA = 0.5


def _bucket(n: int) -> int:
    """Power-of-two population bucket; bucket 0 holds n <= 1."""
    return max(int(n), 1).bit_length() - 1


class CostModel:
    """Learned table of per-cell evaluation cost, protocol x n-bucket."""

    def __init__(self, bench_path: str | os.PathLike | None = None) -> None:
        #: learned per-cell seconds, keyed "<protocol>|b<bucket>"
        self.table: dict[str, float] = {}
        #: protocol weight relative to HPP, seeded from the bench file
        self.relative = dict(_DEFAULT_RELATIVE_COST)
        self._seed_from_bench(bench_path)

    # -- seeding --------------------------------------------------------
    def _seed_from_bench(self, bench_path: str | os.PathLike | None) -> None:
        path = Path(bench_path) if bench_path is not None else (
            Path(__file__).resolve().parents[3] / "BENCH_engine.json"
        )
        try:
            doc = json.loads(path.read_text())
            medians = {
                case["fullname"]: float(case["median"])
                for case in doc.get("cases", [])
            }
        except (OSError, ValueError, KeyError, TypeError):
            return  # no bench aggregates: built-in ratios apply
        base = medians.get(_BENCH_SEED_CASES["HPP"])
        if not base:
            return
        for proto, fullname in _BENCH_SEED_CASES.items():
            med = medians.get(fullname)
            if med:
                self.relative[proto] = med / base

    # -- persistence ----------------------------------------------------
    def load(self, path: str | os.PathLike) -> None:
        """Merge a persisted table (missing/corrupt files are ignored)."""
        try:
            data = json.loads(Path(path).read_text())
            table = data["table"]
        except (OSError, ValueError, KeyError, TypeError):
            return
        if isinstance(table, dict):
            self.table.update({
                str(k): float(v) for k, v in table.items()
                if isinstance(v, (int, float)) and v > 0
            })

    def save(self, path: str | os.PathLike) -> None:
        try:
            Path(path).write_text(json.dumps({"table": self.table}))
        except OSError:  # pragma: no cover - cache dir vanished
            _log.warning("could not persist cost model to %s", path)

    # -- prediction -----------------------------------------------------
    def predict(self, protocol: str, n: int) -> float:
        """Predicted cost of one ``(protocol, n)`` cell (seconds-ish)."""
        b = _bucket(n)
        learned = self.table.get(f"{protocol}|b{b}")
        if learned is not None:
            return learned
        # nearest learned bucket for this protocol, scaled linearly in n
        nearest = None
        for key, cost in self.table.items():
            proto, _, bstr = key.rpartition("|b")
            if proto != protocol:
                continue
            ob = int(bstr)
            if nearest is None or abs(ob - b) < abs(nearest[0] - b):
                nearest = (ob, cost)
        if nearest is not None:
            return nearest[1] * 2.0 ** (b - nearest[0])
        # cold start: bench-seeded protocol ratio, linear in n
        return self.relative.get(protocol, 1.0) * max(int(n), 1) * 1e-6

    def predict_cells(
        self, protocol: str, cells: Sequence[tuple[int, int]]
    ) -> list[float]:
        memo: dict[int, float] = {}
        out = []
        for n, _ in cells:
            c = memo.get(n)
            if c is None:
                c = memo[n] = self.predict(protocol, n)
            out.append(c)
        return out

    # -- online update --------------------------------------------------
    def observe(
        self,
        protocol: str,
        cells: Sequence[tuple[int, int]],
        elapsed: float,
    ) -> None:
        """Fold one computed shard's wall time back into the table.

        The shard's elapsed seconds are attributed to its cells in
        proportion to their current predicted costs (a shard usually
        mixes buckets), then each touched bucket's per-cell estimate
        moves toward the observation by EMA.
        """
        if not cells or elapsed <= 0 or not math.isfinite(elapsed):
            return
        preds = self.predict_cells(protocol, cells)
        total = sum(preds)
        if total <= 0:
            return
        per_bucket: dict[int, tuple[float, int]] = {}
        for (n, _), pred in zip(cells, preds):
            b = _bucket(n)
            share, count = per_bucket.get(b, (0.0, 0))
            per_bucket[b] = (share + pred / total * elapsed, count + 1)
        for b, (share, count) in per_bucket.items():
            key = f"{protocol}|b{b}"
            obs = share / count
            old = self.table.get(key)
            self.table[key] = (
                obs if old is None
                else (1 - _EMA_ALPHA) * old + _EMA_ALPHA * obs
            )


# ----------------------------------------------------------------------
# cost-balanced sharding
# ----------------------------------------------------------------------
def balanced_contiguous_bounds(
    costs: Sequence[float], n_shards: int
) -> list[int]:
    """Split ``range(len(costs))`` into contiguous runs of ~equal cost.

    Returns ``n_shards + 1`` boundary indices (first 0, last
    ``len(costs)``).  Used by the replica-batch pool, whose shards must
    stay contiguous in cell order; each boundary is placed where the
    cost prefix sum crosses the next ``total / n_shards`` multiple, and
    every shard is kept non-empty so no worker is launched idle.
    """
    n = len(costs)
    n_shards = max(1, min(int(n_shards), n))
    total = float(sum(costs))
    if total <= 0:  # degenerate: fall back to equal counts
        return [n * w // n_shards for w in range(n_shards + 1)]
    bounds = [0]
    acc = 0.0
    for i, c in enumerate(costs):
        acc += c
        # leave enough cells for the remaining shards to be non-empty
        while (
            len(bounds) < n_shards
            and acc >= total * len(bounds) / n_shards
            and i + 1 <= n - (n_shards - len(bounds))
        ):
            bounds.append(i + 1)
    while len(bounds) < n_shards:
        bounds.append(n - (n_shards - len(bounds)))
    bounds.append(n)
    return bounds


def greedy_shards(
    costs: Sequence[float], n_shards: int
) -> list[list[int]]:
    """LPT assignment: heaviest cell first, onto the lightest shard.

    Returns per-shard index lists (indices into ``costs``); every index
    appears exactly once.  Used by the per-cell pool, which has no
    contiguity requirement — results are reassembled by index, so the
    assignment affects wall-clock only, never values.
    """
    n = len(costs)
    n_shards = max(1, min(int(n_shards), n))
    loads = [0.0] * n_shards
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    for i in sorted(range(n), key=lambda i: -costs[i]):
        w = min(range(n_shards), key=loads.__getitem__)
        shards[w].append(i)
        loads[w] += costs[i]
    for shard in shards:
        shard.sort()  # preserve cell order inside a shard
    return shards
