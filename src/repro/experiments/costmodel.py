"""Predicted per-cell sweep cost: a small learned table, updated online.

The sweep runner packs cells into worker shards.  Equal-*count* shards
are badly balanced on heterogeneous grids: one EHPP cell costs roughly
an order of magnitude more than an HPP cell at the same ``n``, so a
chunk of mixed cells straggles on its slowest member while other
workers idle.  :class:`CostModel` supplies the per-cell weight the
packing needs:

- **Table.** One predicted cost (arbitrary but mutually consistent
  units — only ratios matter for packing) per ``(protocol, n-bucket)``,
  with buckets at powers of two of the population size.
- **Seeding.** On first use the model reads the committed
  ``BENCH_engine.json`` aggregates: the ``test_cell_batched[<proto>]``
  medians measure exactly one sweep column per protocol, which fixes the
  protocol-to-protocol ratios.  Without a bench file a built-in ratio
  table (EHPP ~ 10x HPP) applies, and unknown protocols fall back to a
  cost linear in ``n``.
- **Online updates.** After every computed shard the runner reports
  ``(protocol, cells, elapsed)``; the model spreads the elapsed time
  over the shard's cells proportionally to their current predictions and
  updates each touched bucket by exponential moving average.  The table
  therefore converges to the machine it is actually running on, and can
  be persisted next to the cell cache (``costs.json``) so later
  processes start warm.

- **Hosts.** Distributed sweeps add a second learned dimension: a
  relative *speed* per host agent (1.0 = this machine), seeded from the
  throughput each agent advertises in its HELLO frame and refined by
  EMA from observed shard wall times.  :func:`assign_to_hosts` runs the
  same LPT packing across hosts weighted by capacity (cores x speed),
  so a fast 32-core box gets proportionally more predicted cost than a
  slow 4-core one.

Predictions never affect *values* — cells are pure functions of their
coordinates — only which worker computes which cell, so a wildly wrong
cost model costs wall-clock time, never correctness.
"""

from __future__ import annotations

import json
import logging
import math
import os
from pathlib import Path
from typing import Sequence

__all__ = [
    "CostModel",
    "assign_to_hosts",
    "balanced_contiguous_bounds",
    "greedy_shards",
]

_log = logging.getLogger(__name__)

#: fallback protocol weights relative to HPP (per cell, same n); the
#: bench seeds override these with measured ratios when available
_DEFAULT_RELATIVE_COST = {
    "HPP": 1.0,
    "TPP": 1.8,
    "EHPP": 10.0,
    "CPP": 1.2,
    "CP": 1.2,
    "eCPP": 1.5,
    "MIC": 1.5,
}
#: bench cases whose medians seed the protocol ratios: one batched
#: sweep column per protocol (see benchmarks/test_bench_batch.py)
_BENCH_SEED_CASES = {
    "HPP": "benchmarks/test_bench_batch.py::test_cell_batched[hpp]",
    "TPP": "benchmarks/test_bench_batch.py::test_cell_batched[tpp]",
    "EHPP": "benchmarks/test_bench_batch.py::test_cell_batched[ehpp]",
}
#: EMA weight of a fresh observation against the current estimate
_EMA_ALPHA = 0.5


def _bucket(n: int) -> int:
    """Power-of-two population bucket; bucket 0 holds n <= 1."""
    return max(int(n), 1).bit_length() - 1


class CostModel:
    """Learned table of per-cell evaluation cost, protocol x n-bucket."""

    def __init__(self, bench_path: str | os.PathLike | None = None) -> None:
        #: learned per-cell seconds, keyed "<protocol>|b<bucket>"
        self.table: dict[str, float] = {}
        #: protocol weight relative to HPP, seeded from the bench file
        self.relative = dict(_DEFAULT_RELATIVE_COST)
        #: learned relative speed per remote host ("host:port" -> x1.0)
        self.hosts: dict[str, float] = {}
        self._seed_from_bench(bench_path)

    # -- seeding --------------------------------------------------------
    def _seed_from_bench(self, bench_path: str | os.PathLike | None) -> None:
        path = Path(bench_path) if bench_path is not None else (
            Path(__file__).resolve().parents[3] / "BENCH_engine.json"
        )
        try:
            doc = json.loads(path.read_text())
            medians = {
                case["fullname"]: float(case["median"])
                for case in doc.get("cases", [])
            }
        except (OSError, ValueError, KeyError, TypeError):
            return  # no bench aggregates: built-in ratios apply
        base = medians.get(_BENCH_SEED_CASES["HPP"])
        if not base:
            return
        for proto, fullname in _BENCH_SEED_CASES.items():
            med = medians.get(fullname)
            if med:
                self.relative[proto] = med / base

    # -- persistence ----------------------------------------------------
    @staticmethod
    def _read_tables(path: Path) -> tuple[dict[str, float], dict[str, float]]:
        """``(table, hosts)`` from a persisted file; empty on any damage."""
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}, {}

        def _clean(obj) -> dict[str, float]:
            if not isinstance(obj, dict):
                return {}
            return {
                str(k): float(v) for k, v in obj.items()
                if isinstance(v, (int, float)) and v > 0
                and math.isfinite(v)
            }

        if not isinstance(data, dict):
            return {}, {}
        return _clean(data.get("table")), _clean(data.get("hosts"))

    def load(self, path: str | os.PathLike) -> None:
        """Merge a persisted table (missing/corrupt files are ignored)."""
        table, hosts = self._read_tables(Path(path))
        self.table.update(table)
        self.hosts.update(hosts)

    def save(self, path: str | os.PathLike) -> None:
        """Persist atomically, merging with whatever is already on disk.

        Concurrent runners share one ``costs.json``: a plain overwrite
        is torn on crash and last-writer-wins across processes — a
        runner that only swept HPP would erase another's learned EHPP
        buckets.  Instead the on-disk tables are re-read and merged
        under this process's values (our buckets are fresher *for the
        buckets we touched*; everyone else's survive), then written
        tmp + fsync + rename like ``cellstore.py``'s segments, so a
        reader never sees a torn file.  The tmp name embeds the PID so
        two savers can't collide on it.
        """
        target = Path(path)
        disk_table, disk_hosts = self._read_tables(target)
        merged_table = {**disk_table, **self.table}
        merged_hosts = {**disk_hosts, **self.hosts}
        tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w") as fh:
                json.dump(
                    {"table": merged_table, "hosts": merged_hosts}, fh,
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except OSError:  # pragma: no cover - cache dir vanished
            _log.warning("could not persist cost model to %s", path)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # -- prediction -----------------------------------------------------
    def predict(self, protocol: str, n: int) -> float:
        """Predicted cost of one ``(protocol, n)`` cell (seconds-ish)."""
        b = _bucket(n)
        learned = self.table.get(f"{protocol}|b{b}")
        if learned is not None:
            return learned
        # nearest learned bucket for this protocol, scaled linearly in n
        nearest = None
        for key, cost in self.table.items():
            proto, _, bstr = key.rpartition("|b")
            if proto != protocol:
                continue
            ob = int(bstr)
            if nearest is None or abs(ob - b) < abs(nearest[0] - b):
                nearest = (ob, cost)
        if nearest is not None:
            return nearest[1] * 2.0 ** (b - nearest[0])
        # cold start: bench-seeded protocol ratio, linear in n
        return self.relative.get(protocol, 1.0) * max(int(n), 1) * 1e-6

    def predict_cells(
        self, protocol: str, cells: Sequence[tuple[int, int]]
    ) -> list[float]:
        memo: dict[int, float] = {}
        out = []
        for n, _ in cells:
            c = memo.get(n)
            if c is None:
                c = memo[n] = self.predict(protocol, n)
            out.append(c)
        return out

    # -- online update --------------------------------------------------
    def observe(
        self,
        protocol: str,
        cells: Sequence[tuple[int, int]],
        elapsed: float,
    ) -> None:
        """Fold one computed shard's wall time back into the table.

        The shard's elapsed seconds are attributed to its cells in
        proportion to their current predicted costs (a shard usually
        mixes buckets), then each touched bucket's per-cell estimate
        moves toward the observation by EMA.
        """
        if not cells or elapsed <= 0 or not math.isfinite(elapsed):
            return
        preds = self.predict_cells(protocol, cells)
        total = sum(preds)
        if total <= 0:
            return
        per_bucket: dict[int, tuple[float, int]] = {}
        for (n, _), pred in zip(cells, preds):
            b = _bucket(n)
            share, count = per_bucket.get(b, (0.0, 0))
            per_bucket[b] = (share + pred / total * elapsed, count + 1)
        for b, (share, count) in per_bucket.items():
            key = f"{protocol}|b{b}"
            obs = share / count
            old = self.table.get(key)
            self.table[key] = (
                obs if old is None
                else (1 - _EMA_ALPHA) * old + _EMA_ALPHA * obs
            )

    # -- the host dimension ---------------------------------------------
    def host_speed(self, address: str) -> float:
        """Relative speed of ``address`` (1.0 = unknown = this machine)."""
        return self.hosts.get(address, 1.0)

    def seed_host(self, address: str, speed: float) -> None:
        """First estimate of a host's speed (from its advertised
        throughput, normalised by the dispatcher) — never overwrites a
        speed already *learned* from real shard wall times."""
        if address not in self.hosts and speed > 0 and math.isfinite(speed):
            self.hosts[address] = float(speed)

    def observe_host(
        self, address: str, predicted: float, elapsed: float
    ) -> None:
        """Fold one host's measured round-trip speed into its estimate.

        ``predicted`` is the total predicted cost (in *local* per-cell
        seconds) of the work the host completed, and ``elapsed`` is the
        busy core-seconds the dispatcher clocked for it — wall time
        while shards were in flight, weighted by how many were in
        flight (capped at the host's cores).  ``predicted / elapsed``
        is then the host's per-core speed relative to this machine;
        the estimate moves by the same EMA the cost table uses.
        Because the clock runs on the *dispatcher* side, serialization
        and network time ride inside ``elapsed`` on purpose — a fast
        host behind a slow link should be packed like a slow host.
        """
        if predicted <= 0 or elapsed <= 0 or not math.isfinite(elapsed):
            return
        obs = predicted / elapsed
        old = self.hosts.get(address)
        self.hosts[address] = (
            obs if old is None
            else (1 - _EMA_ALPHA) * old + _EMA_ALPHA * obs
        )


# ----------------------------------------------------------------------
# cost-balanced sharding
# ----------------------------------------------------------------------
def balanced_contiguous_bounds(
    costs: Sequence[float], n_shards: int
) -> list[int]:
    """Split ``range(len(costs))`` into contiguous runs of ~equal cost.

    Returns ``n_shards + 1`` boundary indices (first 0, last
    ``len(costs)``).  Used by the replica-batch pool, whose shards must
    stay contiguous in cell order; each boundary is placed where the
    cost prefix sum crosses the next ``total / n_shards`` multiple, and
    every shard is kept non-empty so no worker is launched idle.
    """
    n = len(costs)
    n_shards = max(1, min(int(n_shards), n))
    total = float(sum(costs))
    if total <= 0:  # degenerate: fall back to equal counts
        return [n * w // n_shards for w in range(n_shards + 1)]
    bounds = [0]
    acc = 0.0
    for i, c in enumerate(costs):
        acc += c
        # leave enough cells for the remaining shards to be non-empty
        while (
            len(bounds) < n_shards
            and acc >= total * len(bounds) / n_shards
            and i + 1 <= n - (n_shards - len(bounds))
        ):
            bounds.append(i + 1)
    while len(bounds) < n_shards:
        bounds.append(n - (n_shards - len(bounds)))
    bounds.append(n)
    return bounds


def greedy_shards(
    costs: Sequence[float], n_shards: int
) -> list[list[int]]:
    """LPT assignment: heaviest cell first, onto the lightest shard.

    Returns per-shard index lists (indices into ``costs``); every index
    appears exactly once.  Used by the per-cell pool, which has no
    contiguity requirement — results are reassembled by index, so the
    assignment affects wall-clock only, never values.
    """
    n = len(costs)
    n_shards = max(1, min(int(n_shards), n))
    loads = [0.0] * n_shards
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    for i in sorted(range(n), key=lambda i: -costs[i]):
        w = min(range(n_shards), key=loads.__getitem__)
        shards[w].append(i)
        loads[w] += costs[i]
    for shard in shards:
        shard.sort()  # preserve cell order inside a shard
    return shards


def assign_to_hosts(
    costs: Sequence[float], capacities: Sequence[float]
) -> list[int]:
    """LPT across *heterogeneous* hosts: returns one host index per cost.

    The host dimension of the packing: ``capacities[h]`` is host ``h``'s
    processing rate (cores x learned speed), and each shard goes to the
    host whose *finish time* — accumulated cost divided by capacity —
    stays lowest, heaviest shard first.  With equal capacities this
    degenerates to :func:`greedy_shards`'s assignment.  Like every
    packing here it moves work, never values.
    """
    n_hosts = len(capacities)
    if n_hosts == 0:
        raise ValueError("assign_to_hosts needs at least one host")
    rates = [max(float(c), 1e-9) for c in capacities]
    finish = [0.0] * n_hosts
    owner = [0] * len(costs)
    for i in sorted(range(len(costs)), key=lambda i: -costs[i]):
        h = min(range(n_hosts), key=lambda h: finish[h] + costs[i] / rates[h])
        owner[i] = h
        finish[h] += costs[i] / rates[h]
    return owner
