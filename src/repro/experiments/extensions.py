"""Extension experiments beyond the paper's evaluation.

- :func:`ext_lossy_channel` — execution time and retransmission count of
  the polling protocols under increasing bit-error rates, exercising the
  DES retransmission machinery (the paper assumes an error-free channel).
- :func:`ext_energy` — reader and tag-side energy of each protocol under
  the :mod:`repro.analysis.energy` model; shorter interrogations save
  battery twice (less reader TX, less tag listening).
- :func:`ext_multi_reader` — scheduled multi-reader speed-up as the
  reader grid grows (§II-A's remark, quantified).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.energy import plan_energy
from repro.apps.multi_reader import grid_deployment, simulate_deployment
from repro.baselines.mic import MIC
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.common import ExperimentResult, Series
from repro.workloads.tagsets import uniform_tagset

__all__ = ["ext_lossy_channel", "ext_energy", "ext_multi_reader"]


def _lossy_trial(protocol, tags, seed_seq, budget, info_bits, ber=0.0,
                 backend="machines"):
    """Trial metric: DES run under bit errors → [time (s), retries].

    Kept as the historical entry point; the logic lives in
    :class:`repro.experiments.runner.DESMetric`, which draws the plan
    and the channel from the same independent seed streams (so the two
    spellings are bit-identical) and additionally batch-routes when
    passed to the runner directly.
    """
    from repro.experiments.runner import DESMetric

    return DESMetric(ber=ber, backend=backend)(
        protocol, tags, seed_seq, budget, info_bits
    )


def _energy_trial(protocol, tags, seed_seq, budget, info_bits):
    """Trial metric: [reader_mj, tag_listen_mj, tag_tx_mj] of one plan."""
    plan = protocol.plan(tags, np.random.default_rng(seed_seq))
    rep = plan_energy(plan, info_bits)
    return [rep.reader_mj, rep.tag_listen_mj, rep.tag_tx_mj]


def ext_lossy_channel(
    n: int = 800,
    info_bits: int = 16,
    bers: Sequence[float] = (0.0, 0.0005, 0.001, 0.002, 0.005),
    n_runs: int = 3,
    seed: int = 0,
    backend: str = "array",
) -> ExperimentResult:
    """DES execution under bit errors: time (s) and retries per protocol.

    Args:
        backend: DES population backend; ``"array"`` (the default) makes
            large-``n`` sweeps tractable with bit-identical counters and
            lets the runner batch all of a sweep's Monte-Carlo replicas
            through one :func:`repro.sim.batch.execute_plan_batch` pass.
    """
    from repro.experiments.runner import DESMetric, get_default_runner

    runner = get_default_runner()
    protos = [CPP(), HPP(), EHPP(), TPP()]
    time_series = {p.name: [] for p in protos}
    retry_series = {p.name: [] for p in protos}
    for ber in bers:
        for proto in protos:
            means = runner.sweep_values(
                proto, [n], n_runs=n_runs, seed=seed,
                metric=DESMetric(ber=ber, backend=backend),
                info_bits=info_bits,
            )
            time_series[proto.name].append(float(means[0, 0]))
            retry_series[proto.name].append(float(means[0, 1]))
    xs = list(map(float, bers))
    series = [Series(f"{name}_time_s", xs, ys) for name, ys in time_series.items()]
    series += [Series(f"{name}_retries", xs, ys) for name, ys in retry_series.items()]
    return ExperimentResult(
        name="ext_lossy",
        title=f"execution under bit errors (n={n}, {info_bits}-bit, DES)",
        series=series,
        notes={"invariant": "every run reads 100% of tags via retransmission"},
    )


def ext_energy(
    n: int = 10_000,
    info_bits: int = 16,
    n_runs: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Per-protocol energy: reader TX, tag listening, tag TX (mJ)."""
    from repro.experiments.runner import get_default_runner

    runner = get_default_runner()
    protos = [CPP(), HPP(), EHPP(), MIC(), TPP()]
    labels = [p.name for p in protos]
    reader, listen, tag_tx = [], [], []
    for proto in protos:
        means = runner.sweep_values(
            proto, [n], n_runs=n_runs, seed=seed,
            metric=_energy_trial, info_bits=info_bits,
        )
        reader.append(float(means[0, 0]))
        listen.append(float(means[0, 1]))
        tag_tx.append(float(means[0, 2]))
    xs = list(range(len(labels)))
    return ExperimentResult(
        name="ext_energy",
        title=f"energy per interrogation (n={n}, {info_bits}-bit)",
        series=[
            Series("reader_mj", xs, reader),
            Series("tag_listen_mj", xs, listen),
            Series("tag_tx_mj", xs, tag_tx),
        ],
        notes={"protocols": labels},
    )


def ext_multi_reader(
    n: int = 3_000,
    grids: Sequence[tuple[int, int]] = ((1, 1), (1, 2), (2, 2), (2, 3), (3, 3)),
    seed: int = 0,
) -> ExperimentResult:
    """Scheduled multi-reader speed-up as the reader grid grows."""
    xs, speedups, colors = [], [], []
    for rows, cols in grids:
        rng = np.random.default_rng((seed, rows, cols))
        deployment = grid_deployment(n, rng, rows=rows, cols=cols,
                                     spacing_m=8.0, range_m=6.0)
        tags = uniform_tagset(n, rng)
        result = simulate_deployment(TPP(), deployment, tags, seed=seed)
        xs.append(float(rows * cols))
        speedups.append(result.speedup)
        colors.append(float(result.n_colors))
    return ExperimentResult(
        name="ext_multi_reader",
        title=f"multi-reader speed-up (TPP, n={n})",
        series=[
            Series("speedup", xs, speedups),
            Series("n_colors", xs, colors),
        ],
    )
