"""Shared experiment plumbing: sweeps, aggregation, text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.base import PollingProtocol
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import TagSet, uniform_tagset

__all__ = ["Series", "ExperimentResult", "sweep_protocol", "render_table"]


@dataclass
class Series:
    """One labelled curve: x values and y values."""

    label: str
    x: list[float]
    y: list[float]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.x, dtype=float), np.asarray(self.y, dtype=float)


@dataclass
class ExperimentResult:
    """A named experiment outcome: curves plus free-form notes."""

    name: str
    title: str
    series: list[Series]
    notes: dict[str, object] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.name}")

    def render(self, y_fmt: str = "{:10.3f}") -> str:
        """Plain-text rendering: one column per series over a shared x."""
        xs = self.series[0].x
        header = ["x"] + [s.label for s in self.series]
        lines = [f"== {self.name}: {self.title} ==", "\t".join(header)]
        for i, x in enumerate(xs):
            row = [f"{x:g}"]
            for s in self.series:
                row.append(y_fmt.format(s.y[i]) if i < len(s.y) else "-")
            lines.append("\t".join(row))
        for key, value in self.notes.items():
            lines.append(f"# {key}: {value}")
        return "\n".join(lines)


def sweep_protocol(
    protocol_factory: Callable[[], PollingProtocol],
    n_values: Sequence[int],
    n_runs: int = 20,
    seed: int = 0,
    metric: str = "avg_vector_bits",
    info_bits: int = 1,
    budget: LinkBudget | None = None,
    tagset_factory: Callable[[int, np.random.Generator], TagSet] = uniform_tagset,
) -> Series:
    """Average a plan metric over ``n_runs`` fresh populations per n.

    ``metric`` is either an :class:`InterrogationPlan` attribute name or
    ``"time_us"`` (costed through the budget).
    """
    budget = budget if budget is not None else LinkBudget()
    protocol = protocol_factory()
    ys: list[float] = []
    for n in n_values:
        acc = 0.0
        for run in range(n_runs):
            rng = np.random.default_rng((seed, n, run))
            tags = tagset_factory(n, rng)
            plan = protocol.plan(tags, rng)
            if metric == "time_us":
                acc += budget.plan_us(plan, info_bits)
            else:
                acc += float(getattr(plan, metric))
        ys.append(acc / n_runs)
    return Series(label=protocol.name, x=list(map(float, n_values)), y=ys)


def render_table(
    title: str,
    col_header: str,
    columns: Sequence[int | str],
    rows: dict[str, Sequence[float]],
    fmt: str = "{:>10.2f}",
) -> str:
    """Render a paper-style table (protocol rows × population columns)."""
    lines = [f"== {title} ==",
             "\t".join([f"{col_header:12s}"] + [f"{c:>10}" for c in columns])]
    for name, values in rows.items():
        cells = [fmt.format(v) for v in values]
        lines.append("\t".join([f"{name:12s}"] + cells))
    return "\n".join(lines)
