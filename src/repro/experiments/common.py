"""Shared experiment plumbing: sweeps, aggregation, text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.base import PollingProtocol
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import TagSet, uniform_tagset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SweepRunner

__all__ = ["Series", "ExperimentResult", "sweep_protocol", "render_table"]


@dataclass
class Series:
    """One labelled curve: x values and y values."""

    label: str
    x: list[float]
    y: list[float]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.x, dtype=float), np.asarray(self.y, dtype=float)


@dataclass
class ExperimentResult:
    """A named experiment outcome: curves plus free-form notes."""

    name: str
    title: str
    series: list[Series]
    notes: dict[str, object] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.name}")

    def render(self, y_fmt: str = "{:10.3f}") -> str:
        """Plain-text rendering: one column per series, rows aligned by x.

        Series may sit on different x grids: each row is keyed by the x
        value itself (the sorted union of all grids), and a series with
        no sample at that x renders ``-``.  The old renderer indexed
        every series by ``series[0].x``'s positions, silently misaligning
        series whose grids differed.
        """
        grids = []
        for s in self.series:
            if len(s.x) != len(s.y):
                raise ValueError(
                    f"series {s.label!r} has {len(s.x)} x values "
                    f"but {len(s.y)} y values"
                )
            grids.append({float(x): y for x, y in zip(s.x, s.y)})
        xs = sorted({x for grid in grids for x in grid})
        header = ["x"] + [s.label for s in self.series]
        lines = [f"== {self.name}: {self.title} ==", "\t".join(header)]
        for x in xs:
            row = [f"{x:g}"]
            for grid in grids:
                row.append(y_fmt.format(grid[x]) if x in grid else "-")
            lines.append("\t".join(row))
        for key, value in self.notes.items():
            lines.append(f"# {key}: {value}")
        return "\n".join(lines)


def sweep_protocol(
    protocol_factory: Callable[[], PollingProtocol] | PollingProtocol,
    n_values: Sequence[int],
    n_runs: int = 20,
    seed: int = 0,
    metric: str = "avg_vector_bits",
    info_bits: int = 1,
    budget: LinkBudget | None = None,
    tagset_factory: Callable[[int, np.random.Generator], TagSet] = uniform_tagset,
    runner: "SweepRunner | None" = None,
) -> Series:
    """Average a plan metric over ``n_runs`` fresh populations per n.

    ``metric`` is either an :class:`InterrogationPlan` attribute name or
    ``"time_us"`` (costed through the budget).  Execution is delegated to
    the :mod:`repro.experiments.runner` engine: each ``(n, run)`` cell
    draws its tag population and its plan seeds from *independent*
    ``SeedSequence`` children (the old implementation fed one shared
    generator to both, correlating plan randomness with the tagset
    draw), results are cached per cell, and ``runner.jobs`` worker
    processes shard the grid with bit-identical output.
    """
    from repro.experiments.runner import get_default_runner

    runner = runner if runner is not None else get_default_runner()
    return runner.sweep(
        protocol_factory,
        n_values,
        n_runs=n_runs,
        seed=seed,
        metric=metric,
        info_bits=info_bits,
        budget=budget,
        tagset_factory=tagset_factory,
    )


def render_table(
    title: str,
    col_header: str,
    columns: Sequence[int | str],
    rows: dict[str, Sequence[float]],
    fmt: str = "{:>10.2f}",
) -> str:
    """Render a paper-style table (protocol rows × population columns)."""
    lines = [f"== {title} ==",
             "\t".join([f"{col_header:12s}"] + [f"{c:>10}" for c in columns])]
    for name, values in rows.items():
        cells = [fmt.format(v) for v in values]
        lines.append("\t".join([f"{name:12s}"] + cells))
    return "\n".join(lines)
