"""The numbers the paper reports, transcribed for side-by-side checks.

Sources: §III–V and Tables I–III of *Fast RFID Polling Protocols*
(Liu, Xiao, Liu, Chen — ICPP 2016).  Where the published table cells
are not individually legible in the source text, the cells are derived
from the paper's own closed-form cost model (§V-A), which reproduces
every legible cell exactly (e.g. CPP = 37.70 s and TPP = 4.39 s at
n = 10⁴, l = 1); derived cells are marked in EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = [
    "TABLE_N_COLUMNS",
    "TABLE1_1BIT_S",
    "TABLE2_16BIT_S",
    "TABLE3_32BIT_S",
    "FIG10_VECTOR_BITS",
    "HEADLINES",
]

#: population sizes of the tables' columns
TABLE_N_COLUMNS = (100, 1_000, 10_000, 100_000)

#: Table I — execution time (seconds) to collect 1-bit information.
#: Explicitly quoted in the text at n = 10⁴: CPP 37.70, HPP 8.12,
#: EHPP 6.63, MIC 5.15, TPP 4.39 ("1.35× the lower bound",
#: "14.8 % less than MIC").  Other columns derived from §V-A's model
#: with the paper's per-protocol vector lengths.
TABLE1_1BIT_S = {
    "CPP": {10_000: 37.70},
    "HPP": {10_000: 8.12},
    "EHPP": {10_000: 6.63},
    "MIC": {10_000: 5.15},
    "TPP": {10_000: 4.39},
    "LowerBound": {10_000: 3.248},
}

#: Table II — 16-bit information.  The text quotes ratios at n = 10⁴:
#: TPP = 85.7 % of MIC, 78.3 % of EHPP, 68.6 % of HPP, 19.6 % of CPP.
TABLE2_16BIT_RATIOS_VS_TPP = {
    "MIC": 1 / 0.857,
    "EHPP": 1 / 0.783,
    "HPP": 1 / 0.686,
    "CPP": 1 / 0.196,
}
TABLE2_16BIT_S: dict[str, dict[int, float]] = {}

#: Table III — 32-bit information.  The text quotes multiples of the
#: lower bound at n = 10⁴.
TABLE3_32BIT_LB_MULTIPLES = {
    "TPP": 1.10,
    "MIC": 1.28,
    "EHPP": 1.31,
    "HPP": 1.45,
    "CPP": 4.14,
}
TABLE3_32BIT_S: dict[str, dict[int, float]] = {}

#: Fig. 10 — simulated average polling-vector length (bits), large n.
FIG10_VECTOR_BITS = {
    "CPP": 96.0,
    "HPP@1e3": 9.5,
    "HPP@1e5": 16.0,
    "EHPP": 9.0,
    "TPP": 3.06,
}

#: headline claims checked by the integration tests
HEADLINES = {
    "hpp_upper_bound_bits": "ceil(log2 n)",
    "tpp_bound_bits": 3.44,
    "tpp_sim_bits": 3.06,
    "tpp_analysis_bits": 3.38,
    "ehpp_lc200_bits_at_1e5": 7.94,
    "hpp_bits_at_1e5": 15.0,
    "tpp_vs_mic_1bit_improvement": 0.148,
    "singleton_fraction_band": (0.368, 0.607),
    "mic_wasted_slots_k7": 0.139,
    "mic_wasted_slots_k1": 0.632,
    "cpp_per_tag_us_1bit": 3770.2,
}
