"""Continuous-inventory churn sweep: incremental vs full re-planning.

The paper's protocols interrogate a *static* population; the
continuous-inventory engine (:mod:`repro.apps.inventory`) runs them
epoch after epoch over a churning one.  This experiment quantifies the
two costs that trade off there, as functions of the per-epoch churn
rate:

- **wire time** — seconds of reader/tag airtime per epoch.  Incremental
  re-planning splices churn into the existing plan, so its extension
  rounds can accumulate structure a from-scratch plan would not have;
  this series measures that overhead (it stays small).
- **planning work** — rounds touched per epoch.  Full re-planning
  rebuilds every round (O(n)); incremental re-planning touches only the
  dirtied/appended ones (O(changed)) — the engine's raison d'être.

Every cell routes through the default :class:`SweepRunner`, so results
cache under :func:`repro.experiments.cellstore.cache_version` and the
sweep is bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.common import ExperimentResult, Series

__all__ = ["ChurnMetric", "ext_churn"]


@dataclass(frozen=True)
class ChurnMetric:
    """Callable sweep metric: one continuous-inventory run per cell.

    Flies ``n_epochs`` monitoring epochs over a population churning at
    ``churn`` (split evenly between arrivals and departures, plus a
    ``missing_rate`` of tags going physically silent), re-planning
    either incrementally or from scratch, and returns the per-epoch
    means ``[wire_s, rounds_touched]``.

    ``rounds_touched`` counts dirtied + appended rounds for the
    incremental engine and all planned rounds for the full rebuild —
    the O(changed) vs O(n) planning-work comparison.  All components
    are deterministic functions of the cell seed (wire time comes from
    the DES clock, never the wall clock), so cells cache cleanly.
    """

    churn: float = 0.01
    missing_rate: float = 0.005
    n_epochs: int = 8
    incremental: bool = True
    backend: str = "array"

    def __call__(self, protocol, tags, seed_seq, budget, info_bits):
        from repro.apps.inventory import InventorySession
        from repro.workloads.inventory import ChurnModel

        churn_ss, session_ss = seed_seq.spawn(2)
        churn_rng = np.random.default_rng(churn_ss)
        session = InventorySession(
            protocol, tags,
            seed=int(np.random.default_rng(session_ss).integers(1 << 62)),
            reply_bits=info_bits, incremental=self.incremental,
            budget=budget, backend=self.backend)
        model = ChurnModel(
            arrival_rate=self.churn / 2, departure_rate=self.churn / 2,
            missing_rate=self.missing_rate, return_rate=0.0)
        wire_us = 0.0
        touched = 0
        for _ in range(self.n_epochs):
            report = session.step(model.draw(session.store, churn_rng))
            wire_us += report.time_us
            if report.replan is not None:
                touched += (report.replan.dirty_rounds
                            + report.replan.appended_rounds)
            else:
                touched += report.n_rounds
        return [wire_us / 1e6 / self.n_epochs, touched / self.n_epochs]


def ext_churn(
    n: int = 2_000,
    churn_rates: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05),
    n_epochs: int = 8,
    n_runs: int = 3,
    seed: int = 0,
    backend: str = "array",
) -> ExperimentResult:
    """Wire time and planning work vs churn rate, incremental vs full.

    For each protocol with an incremental planner (HPP, EHPP, TPP) and
    each churn rate, runs the continuous-inventory loop both ways and
    reports per-epoch means.  Series come in pairs —
    ``{P}_incr_time_s`` vs ``{P}_full_time_s`` (wire seconds) and
    ``{P}_incr_rounds`` vs ``{P}_full_rounds`` (rounds touched) — so
    the O(changed)/O(n) gap and the splice overhead read directly off
    the result.
    """
    from repro.experiments.runner import get_default_runner

    runner = get_default_runner()
    protos = [HPP(), EHPP(), TPP()]
    series = []
    xs = list(map(float, churn_rates))
    for proto in protos:
        columns = {"incr_time_s": [], "full_time_s": [],
                   "incr_rounds": [], "full_rounds": []}
        for rate in churn_rates:
            for mode, incremental in (("incr", True), ("full", False)):
                means = runner.sweep_values(
                    proto, [n], n_runs=n_runs, seed=seed,
                    metric=ChurnMetric(churn=float(rate),
                                       n_epochs=n_epochs,
                                       incremental=incremental,
                                       backend=backend),
                )
                columns[f"{mode}_time_s"].append(float(means[0, 0]))
                columns[f"{mode}_rounds"].append(float(means[0, 1]))
        series += [Series(f"{proto.name}_{key}", xs, ys)
                   for key, ys in columns.items()]
    return ExperimentResult(
        name="ext_churn",
        title=(f"continuous inventory under churn "
               f"(n={n}, {n_epochs} epochs, DES wire time)"),
        series=series,
        notes={"invariant": "incremental and full replans poll the same "
                            "churned population each epoch"},
    )
