"""Zero-copy shared-memory dataplane for the sweep engine.

``SweepRunner`` historically shipped *recipes* to its workers: every
shard carried a pickled ``tagset_factory`` and each worker re-derived
every population from seed, and every sweep call built (and tore down) a
fresh ``ProcessPoolExecutor`` — a fresh interpreter under the portable
``spawn`` start method, a full module re-import, and a cold numba JIT
cache per worker, per sweep.  At paper-scale grids (n=10^5 x many
protocols x many replicas) that overhead dominates the already
vectorised compute.  This module removes both costs without changing a
single computed bit:

- :class:`ColumnArena` — the parent exports numpy columns (tagset
  identity words, schedule exchange columns) into
  ``multiprocessing.shared_memory`` segments and hands workers a tiny
  picklable :class:`SegmentManifest` (segment name, per-column dtype /
  shape / offset) instead of the data; workers :func:`attach` read-only
  zero-copy views.  Lifecycle is crash-safe: segments are unlinked on
  :meth:`ColumnArena.close` (registered ``atexit``), a startup
  :func:`sweep_orphans` reclaims segments leaked by a SIGKILLed run
  (names embed the owning PID), close is idempotent, and workers
  unregister their attachments from the ``resource_tracker`` so a dying
  worker can never unlink a segment the parent still owns.
- :class:`WorkerPool` — a persistent, warm ``ProcessPoolExecutor`` the
  runner reuses across sweep calls.  Workers are born once (start
  method via ``REPRO_POOL_START=auto|fork|spawn|forkserver``), run the
  kernel-backend warmup hook (:func:`repro.kernels.warmup`) at birth,
  and keep their tagset memo and arena attachments across sweeps.

Everything is gated by ``REPRO_SHM=auto|off`` (CLI: ``--no-shm``).
``off`` restores the legacy behaviour exactly — per-sweep pools,
per-worker regeneration — and never touches ``shared_memory`` at all.
The dataplane is an *invisible* optimisation by contract: attached
populations are bit-identical to regenerated ones (same seed-derived
draw, exported verbatim), so cell values, cache keys, and
``CellStore`` bytes are unchanged with the dataplane on or off.
"""

from __future__ import annotations

import atexit
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

import numpy as np

__all__ = [
    "ColumnArena",
    "ColumnSpec",
    "SegmentManifest",
    "WorkerPool",
    "arena_stats",
    "attach",
    "attach_tagset",
    "close_arena",
    "dataplane_enabled",
    "detach_all",
    "get_arena",
    "get_worker_pool",
    "resolve_start_method",
    "shutdown_worker_pool",
    "sweep_orphans",
    "SEGMENT_PREFIX",
]

#: ``/dev/shm`` name prefix; the second dash-separated field is the
#: owning PID, which is what makes orphan reclamation possible.
SEGMENT_PREFIX = "repro-shm"

#: column start offsets are aligned so attached views stay SIMD-friendly
_ALIGN = 64

#: process-local count of ``SharedMemory`` constructions — the
#: ``REPRO_SHM=off`` tests assert this stays zero.
shared_memory_touches = 0


def _shared_memory():
    """The ``SharedMemory`` class, imported lazily so ``REPRO_SHM=off``
    never even imports the module (and every construction is counted)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory


def _count_touch() -> None:
    global shared_memory_touches
    shared_memory_touches += 1


@contextmanager
def _untracked() -> Iterator[None]:
    """Suppress resource-tracker registration for the enclosed attach.

    CPython (< 3.13, where ``track=False`` landed) registers POSIX
    segments with the tracker on *attach* as well as on create.  For a
    non-owning attachment that is actively harmful: under ``spawn`` the
    worker's tracker unlinks the parent's live segment when the worker
    exits; under ``fork`` the worker shares the parent's tracker, so
    any worker-side unregister erases the parent's own registration.
    Only the creating process should track, so attaches are wrapped in
    this registration no-op.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        yield
    finally:
        resource_tracker.register = original


def dataplane_enabled() -> bool:
    """Read the ``REPRO_SHM`` gate (default ``auto`` = on)."""
    choice = os.environ.get("REPRO_SHM", "auto").strip().lower() or "auto"
    if choice in ("auto", "on", "1", "yes"):
        return True
    if choice in ("off", "0", "no"):
        return False
    raise ValueError(f"REPRO_SHM={choice!r}: expected auto or off")


def resolve_start_method(choice: str | None = None) -> str:
    """Worker start method: ``REPRO_POOL_START=auto|fork|spawn|forkserver``.

    ``auto`` prefers ``fork`` where the platform offers it (cheap, and
    the historical Linux behaviour) and falls back to ``spawn``.  The
    dataplane benchmarks pin ``spawn`` explicitly — the portable method,
    and the one whose per-pool cost (interpreter boot, module re-import,
    kernel re-warm) the persistent pool exists to amortise.
    """
    import multiprocessing

    if choice is None:
        choice = os.environ.get("REPRO_POOL_START", "auto")
    choice = choice.strip().lower() or "auto"
    available = multiprocessing.get_all_start_methods()
    if choice == "auto":
        return "fork" if "fork" in available else "spawn"
    if choice not in available:
        raise ValueError(
            f"REPRO_POOL_START={choice!r}: available {available}"
        )
    return choice


# ----------------------------------------------------------------------
# manifests: how a segment's contents are described to a worker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnSpec:
    """One numpy column inside a segment (dtype/shape/offset triple)."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SegmentManifest:
    """A picklable description of one published segment.

    This is all that crosses the process boundary: workers rebuild
    zero-copy views from ``(segment, columns)`` via :func:`attach`.
    ``key`` is the arena's logical identity (e.g. the tagset memo key)
    and ``refs`` counts how many dispatches have shipped this manifest —
    observability for the eviction policy, not a correctness input.

    ``inline`` is the off-host degrade path: a manifest dispatched to a
    *remote* machine cannot name a ``/dev/shm`` segment the worker can
    reach, so :meth:`ColumnArena.inline_manifest` ships the segment's
    bytes verbatim inside the manifest instead (``segment=""``).
    :func:`attach` rebuilds the same read-only column views over the
    inline buffer — byte-for-byte the published segment, so populations
    stay bit-identical whichever transport carried them.
    """

    key: str
    segment: str
    nbytes: int
    columns: tuple[ColumnSpec, ...]
    refs: int = 0
    inline: bytes | None = None


def _layout(columns: dict[str, np.ndarray]) -> tuple[list[ColumnSpec], int]:
    """Aligned packing of ``columns`` into one segment."""
    specs: list[ColumnSpec] = []
    offset = 0
    for name, arr in columns.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs.append(ColumnSpec(
            name=name, dtype=arr.dtype.str, shape=tuple(arr.shape),
            offset=offset,
        ))
        offset += int(arr.nbytes)
    return specs, max(offset, 1)  # SharedMemory refuses size 0


# ----------------------------------------------------------------------
# the parent-side arena
# ----------------------------------------------------------------------
class ColumnArena:
    """Parent-owned shared-memory segments of numpy columns.

    One :meth:`publish` call packs a dict of columns into one segment
    and memoises the manifest under a logical key, so re-publishing
    (the same tagset wanted by six protocol sweeps, say) is a lookup.
    A byte budget (``REPRO_SHM_MAX_BYTES``, default 256 MiB) bounds
    residency: least-recently-used segments are unlinked first.
    Columns smaller than ``REPRO_SHM_MIN_BYTES`` (default 64 KiB) are
    not published at all — at that size a worker regenerates faster
    than the kernel maps a page, and the caller's regeneration fallback
    is bit-identical by construction.
    """

    def __init__(
        self,
        max_bytes: int | None = None,
        min_bytes: int | None = None,
    ) -> None:
        def _env_int(name: str, default: int) -> int:
            raw = os.environ.get(name)
            return int(raw) if raw else default

        self.max_bytes = (
            max_bytes if max_bytes is not None
            else _env_int("REPRO_SHM_MAX_BYTES", 256 * 1024 * 1024)
        )
        self.min_bytes = (
            min_bytes if min_bytes is not None
            else _env_int("REPRO_SHM_MIN_BYTES", 64 * 1024)
        )
        self._segments: dict[str, Any] = {}  # segment name -> SharedMemory
        self._manifests: OrderedDict[str, SegmentManifest] = OrderedDict()
        self._seq = 0
        self.total_bytes = 0
        self.published_bytes = 0  # cumulative, for profiling
        self.failed = False  # a segment-creation error disables the arena

    # ------------------------------------------------------------------
    @property
    def segments(self) -> int:
        return len(self._segments)

    def manifest(self, key: str) -> SegmentManifest | None:
        """The manifest published under ``key``, refreshed as MRU."""
        m = self._manifests.get(key)
        if m is not None:
            self._manifests.move_to_end(key)
            self._manifests[key] = m = replace(m, refs=m.refs + 1)
        return m

    def publish(
        self, key: str, columns: dict[str, np.ndarray]
    ) -> SegmentManifest | None:
        """Copy ``columns`` into a fresh segment published under ``key``.

        Returns the manifest, or ``None`` when the columns are below the
        publication threshold or shared memory is unusable (the caller
        falls back to shipping the recipe, which is always correct).
        """
        existing = self.manifest(key)
        if existing is not None:
            return existing
        if self.failed:
            return None
        specs, size = _layout(columns)
        if size < self.min_bytes:
            return None
        self._evict(size)
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{self._seq:06d}"
        self._seq += 1
        try:
            _count_touch()
            shm = _shared_memory()(name=name, create=True, size=size)
        except OSError:  # no /dev/shm, exhausted, permissions ...
            self.failed = True
            return None
        for spec, arr in zip(specs, columns.values()):
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=shm.buf, offset=spec.offset,
            )
            view[...] = arr
        self._segments[name] = shm
        manifest = SegmentManifest(
            key=key, segment=name, nbytes=size, columns=tuple(specs),
        )
        self._manifests[key] = manifest
        self.total_bytes += size
        self.published_bytes += size
        return manifest

    def inline_manifest(self, key: str) -> SegmentManifest | None:
        """An off-host copy of the manifest published under ``key``.

        The returned manifest carries the live segment's bytes verbatim
        (``inline``) and no segment name, so it attaches anywhere — a
        remote host agent's workers rebuild identical column views with
        no ``/dev/shm`` reachability assumption.  ``None`` when nothing
        is published under ``key`` (the caller ships the recipe).
        """
        manifest = self.manifest(key)
        if manifest is None:
            return None
        shm = self._segments.get(manifest.segment)
        if shm is None:  # pragma: no cover - manifest/segment raced
            return None
        return replace(
            manifest, segment="",
            inline=bytes(shm.buf[:manifest.nbytes]),
        )

    def _evict(self, incoming: int) -> None:
        """Unlink LRU segments until ``incoming`` bytes fit the budget."""
        while (
            self._manifests
            and self.total_bytes + incoming > self.max_bytes
        ):
            _, manifest = self._manifests.popitem(last=False)
            self._unlink(manifest.segment)

    def _unlink(self, segment: str) -> None:
        shm = self._segments.pop(segment, None)
        if shm is None:
            return
        self.total_bytes -= shm.size
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            pass

    def close(self) -> None:
        """Unlink every segment; safe to call any number of times."""
        for name in list(self._segments):
            self._unlink(name)
        self._manifests.clear()
        self.total_bytes = 0


# ----------------------------------------------------------------------
# process-global arena (parent side)
# ----------------------------------------------------------------------
_arena: ColumnArena | None = None


def get_arena() -> ColumnArena:
    """The process-wide arena, created on first use.

    Creation also sweeps orphan segments left by a previous, killed
    run and registers the ``atexit`` unlink hook.
    """
    global _arena
    if _arena is None:
        sweep_orphans()
        _arena = ColumnArena()
        atexit.register(close_arena)
    return _arena


def arena_stats() -> tuple[int, int]:
    """``(segments, bytes)`` of the live arena — ``(0, 0)`` when no
    arena exists, without creating one."""
    if _arena is None:
        return (0, 0)
    return (_arena.segments, _arena.total_bytes)


def close_arena() -> None:
    """Unlink the global arena's segments and forget it (idempotent)."""
    global _arena
    if _arena is not None:
        _arena.close()
        _arena = None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def sweep_orphans(root: str | os.PathLike = "/dev/shm") -> list[str]:
    """Reclaim ``repro-shm-*`` segments whose owning PID is dead.

    A SIGKILLed parent never runs its ``atexit`` unlink; its segments
    survive in ``/dev/shm`` with the dead PID baked into their name.
    Every new arena sweeps them on startup.  Unlinks go straight through
    the filesystem — attaching just to unlink would map the orphan for
    nothing.  Returns the reclaimed names.
    """
    directory = Path(root)
    if not directory.is_dir():  # pragma: no cover - non-tmpfs platform
        return []
    reclaimed: list[str] = []
    for path in directory.glob(f"{SEGMENT_PREFIX}-*-*"):
        try:
            pid = int(path.name.split("-")[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            path.unlink()
            reclaimed.append(path.name)
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            pass
    return reclaimed


# ----------------------------------------------------------------------
# worker-side attachment
# ----------------------------------------------------------------------
#: segment name -> (SharedMemory | None, {column name -> read-only view});
#: segments are immutable once published, so caching by name is safe.
#: Inline attachments cache under a ``"\x00inline:<key>"`` pseudo-name
#: with a ``None`` handle (their buffer is the manifest's own bytes).
_attached: OrderedDict[str, tuple[Any, dict[str, np.ndarray]]] = OrderedDict()
_ATTACH_CACHE_MAX = 256


def _spec_nbytes(spec: ColumnSpec) -> int:
    count = 1
    for dim in spec.shape:
        count *= int(dim)
    return count * np.dtype(spec.dtype).itemsize


def _views_over(
    buffer, manifest: SegmentManifest, capacity: int
) -> dict[str, np.ndarray]:
    """Read-only column views over ``buffer``, bounds-checked first.

    A manifest whose columns reach past ``capacity`` describes a
    *different* segment than the one we attached (truncated file, stale
    manifest, wrong name) — raising here is the garbage guard: without
    it the views would silently alias unrelated or out-of-range memory.
    """
    if capacity < manifest.nbytes:
        raise ValueError(
            f"segment {manifest.segment or '<inline>'} holds {capacity} "
            f"bytes but manifest {manifest.key!r} describes "
            f"{manifest.nbytes}: refusing to attach garbage"
        )
    views: dict[str, np.ndarray] = {}
    for spec in manifest.columns:
        if spec.offset + _spec_nbytes(spec) > capacity:
            raise ValueError(
                f"column {spec.name!r} of manifest {manifest.key!r} "
                f"overruns its segment: refusing to attach garbage"
            )
        arr = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype),
            buffer=buffer, offset=spec.offset,
        )
        arr.flags.writeable = False
        views[spec.name] = arr
    return views


def attach(
    manifest: SegmentManifest, missing_ok: bool = True
) -> dict[str, np.ndarray] | None:
    """Read-only views of a published segment's columns.

    Three shapes of manifest arrive here:

    - **inline** (``inline is not None``): the off-host degrade path —
      views are built over the shipped bytes, zero shared-memory
      touches, byte-identical to the published segment.
    - **named** (``segment`` set): the zero-copy local path.  Returns
      ``None`` when the segment no longer exists (evicted or unlinked
      between dispatch and attach) and ``missing_ok`` is true — callers
      fall back to regeneration, which is bit-identical; with
      ``missing_ok=False`` a dangling name raises ``FileNotFoundError``
      loudly instead.  A segment *smaller* than the manifest promises
      raises ``ValueError`` rather than attaching garbage.
    - **stripped** (no segment, no inline): always an error — the
      manifest cannot possibly resolve to data.

    Attachments are cached per segment and unregistered from the
    resource tracker so this process exiting (or crashing) never
    unlinks the parent's segment.
    """
    if manifest.inline is not None:
        cache_key = f"\x00inline:{manifest.key}"
        cached = _attached.get(cache_key)
        if cached is not None:
            _attached.move_to_end(cache_key)
            return cached[1]
        views = _views_over(manifest.inline, manifest, len(manifest.inline))
        _attached[cache_key] = (None, views)
        _trim_attach_cache()
        return views
    if not manifest.segment:
        raise ValueError(
            f"manifest {manifest.key!r} carries neither a segment name "
            f"nor inline bytes: nothing to attach"
        )
    cached = _attached.get(manifest.segment)
    if cached is not None:
        _attached.move_to_end(manifest.segment)
        return cached[1]
    try:
        _count_touch()
        with _untracked():
            shm = _shared_memory()(name=manifest.segment, create=False)
    except (FileNotFoundError, OSError):
        if missing_ok:
            return None
        raise FileNotFoundError(
            f"segment {manifest.segment!r} (manifest {manifest.key!r}) "
            f"does not exist on this host"
        )
    try:
        views = _views_over(shm.buf, manifest, shm.size)
    except ValueError:
        shm.close()
        raise
    _attached[manifest.segment] = (shm, views)
    _trim_attach_cache()
    return views


def _trim_attach_cache() -> None:
    while len(_attached) > _ATTACH_CACHE_MAX:
        _, (old, _views) = _attached.popitem(last=False)
        if old is None:
            continue
        try:
            old.close()
        except (BufferError, OSError):  # pragma: no cover - view in flight
            pass


def attach_tagset(manifest: SegmentManifest):
    """Rebuild a :class:`~repro.workloads.tagsets.TagSet` over an
    attached segment (or ``None`` when the segment is gone)."""
    from repro.workloads.tagsets import TagSet

    views = attach(manifest)
    if views is None:
        return None
    return TagSet.from_columns(views)


def detach_all() -> None:
    """Drop every cached attachment (tests and worker teardown)."""
    while _attached:
        _, (shm, _views) = _attached.popitem()
        if shm is None:  # inline attachment: nothing to close
            continue
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - view in flight
            pass


# ----------------------------------------------------------------------
# the persistent warm worker pool
# ----------------------------------------------------------------------
def _worker_init() -> None:
    """Worker birth hook: warm the kernel backend and the hot modules.

    Runs once per worker process, at pool creation — a spawned worker
    pays interpreter boot + imports + (under numba) JIT cache load
    *here*, so the first sweep shard it receives runs at steady-state
    speed.  Everything imported is something every sweep shard needs.
    """
    import repro.experiments.runner  # noqa: F401 - preload the hot path
    import repro.sim.batch  # noqa: F401
    from repro.kernels import warmup

    warmup()


class WorkerPool:
    """A persistent ``ProcessPoolExecutor`` with warm, arena-aware workers.

    Unlike the per-sweep executors it replaces, a ``WorkerPool`` is
    created once and reused across every ``_compute``/``_compute_batch``
    call — pool spawn, module imports, and kernel warmup are paid at
    birth (recorded in :attr:`spawn_seconds`) instead of per sweep.
    ``broken`` flips when a worker dies mid-task; the runner disposes
    the pool and falls back in-process for that sweep.
    """

    def __init__(self, jobs: int, start_method: str | None = None) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        self.jobs = int(jobs)
        self.start_method = resolve_start_method(start_method)
        self.broken = False
        t0 = time.perf_counter()
        self._executor = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_worker_init,
        )
        # force every worker to exist (and warm up) now, not lazily on
        # first dispatch: one trivial task per worker slot
        list(self._executor.map(_worker_ping, range(self.jobs)))
        self.spawn_seconds = time.perf_counter() - t0

    def map(self, fn: Callable, args: Iterable[Any]) -> list[Any]:
        """Ordered map; marks the pool broken on worker death."""
        from concurrent.futures.process import BrokenProcessPool

        try:
            return list(self._executor.map(fn, args))
        except BrokenProcessPool:
            self.broken = True
            raise

    def submit(self, fn: Callable, *args: Any):
        """One task as a future (the host agent's pipelined dispatch).

        A worker dying marks the pool broken — via the future when the
        death is discovered asynchronously — so the next
        :func:`get_worker_pool` call respawns instead of reusing a
        corpse.
        """
        from concurrent.futures.process import BrokenProcessPool

        try:
            future = self._executor.submit(fn, *args)
        except BrokenProcessPool:
            self.broken = True
            raise

        def _note_broken(done) -> None:
            if isinstance(done.exception(), BrokenProcessPool):
                self.broken = True

        future.add_done_callback(_note_broken)
        return future

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


def _worker_ping(i: int) -> int:
    return i


_pool: WorkerPool | None = None


def get_worker_pool(jobs: int) -> tuple[WorkerPool, bool]:
    """The process-wide pool, (re)built to ``jobs`` workers.

    Returns ``(pool, reused)`` — ``reused`` is False when this call had
    to (re)spawn, i.e. first use, a changed ``jobs`` or start method,
    or a previously broken pool.
    """
    global _pool
    if (
        _pool is not None
        and _pool.jobs == jobs
        and not _pool.broken
        and _pool.start_method == resolve_start_method()
    ):
        return _pool, True
    if _pool is None:
        atexit.register(shutdown_worker_pool)
    else:
        _pool.shutdown()
    _pool = WorkerPool(jobs)
    return _pool, False


def shutdown_worker_pool() -> None:
    """Dispose the process-wide pool (idempotent)."""
    global _pool
    if _pool is not None:
        pool, _pool = _pool, None
        pool.shutdown()
