"""Parallel, cached Monte-Carlo sweep engine.

Every figure and table averages a per-trial metric over a grid of
``(n, run)`` cells.  This module is the single execution engine for
those sweeps:

- **Seed-stable sharding.** Each cell derives its randomness from
  ``np.random.SeedSequence((seed, n, run)).spawn(2)`` — one child for
  the tagset draw, one for the protocol's plan seeds.  Because the
  derivation depends only on the cell coordinates, serial and parallel
  execution produce *bit-identical* averages, and the tagset draw can
  never bleed entropy into (or steal entropy from) the plan — the
  correlated-RNG bug the old shared-generator sweep had.
- **Parallelism.** Cells are sharded round-robin across a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers).  The
  parent reassembles values by cell index and reduces them in a fixed
  order, so the result is independent of worker scheduling.  Anything
  unpicklable silently falls back to in-process execution.
- **Caching.** Finished cells are memoised under a structural key
  ``(protocol description, n, run, metric, info bits, link profile,
  tagset factory, seed)``, salted with the code-version fingerprint of
  :func:`repro.experiments.cellstore.cache_version` — in memory always,
  and on disk (the columnar segment store of
  :mod:`repro.experiments.cellstore`) when a cache directory is
  configured — so re-rendering a figure or table skips every
  already-computed cell, and editing any metric-path source file
  invalidates the affected entries instead of serving stale floats.
- **Cost-aware scheduling.** Worker shards are packed by *predicted
  cell cost* (:class:`repro.experiments.costmodel.CostModel`: a learned
  protocol x n-bucket table, seeded from BENCH_engine.json aggregates
  and updated online from measured shard times), not by cell count, so
  one expensive EHPP cell no longer straggles a whole chunk of cheap
  HPP cells.  Packing never changes values — cells are pure functions
  of their coordinates.

The engine is metric-agnostic: a metric is either the name of an
:class:`~repro.core.base.InterrogationPlan` attribute, the string
``"time_us"`` (costed through the :class:`~repro.phy.link.LinkBudget`),
or a picklable callable ``metric(protocol, tags, seed_seq, budget,
info_bits) -> float | list[float]`` for trials that need more than a
plan (DES execution, energy models, ...).  :class:`DESMetric` is the
structured form of the DES-execution callable: it additionally routes
through the replica-batched DES executor (all of a sweep's Monte-Carlo
cells replayed in one vectorized lockstep pass) when batching is on,
with bit-identical counters and cache entries.  Protocols are either
:class:`~repro.core.base.PollingProtocol` planners or
:class:`~repro.phy.schedule.ScheduleEmitter` baselines (query tree,
TRP, IIP); the latter resolve attribute metrics against the emitted
:class:`~repro.phy.schedule.WireSchedule` (falling back to its ``meta``).
"""

from __future__ import annotations

import functools
import logging
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.base import PollingProtocol
from repro.experiments.cellstore import CellStore, cache_version
from repro.experiments.costmodel import (
    CostModel,
    balanced_contiguous_bounds,
    greedy_shards,
)
# remote has stdlib-only top-level imports, so this cannot cycle even
# though remote's worker entries lazily resolve back into this module
from repro.experiments.remote import pack_blob, parse_hosts, unpack_blob
from repro.phy.link import LinkBudget
from repro.phy.schedule import ScheduleEmitter
from repro.workloads.tagsets import TagSet, uniform_tagset

__all__ = [
    "DESMetric",
    "Metric",
    "ResultCache",
    "SweepRunner",
    "cell_seed_children",
    "describe",
    "evaluate_cell",
    "evaluate_cells_batch",
    "evaluate_cells_batch_des",
    "get_default_runner",
    "set_default_runner",
    "configure_default_runner",
]

Metric = str | Callable[..., Any]

_log = logging.getLogger(__name__)

#: streams spawned per cell: child 0 draws the tagset, child 1 feeds the
#: protocol's plan (callable metrics may spawn further streams from it).
_CELL_STREAMS = 2


# ----------------------------------------------------------------------
# structural descriptions (cache keys)
# ----------------------------------------------------------------------
def describe(obj: Any) -> str:
    """A stable, structure-revealing description of ``obj``.

    Used to build cache keys, so it must be deterministic across
    processes and runs: frozen dataclasses use their field values,
    protocols use their configuration, functions their qualified name.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return repr(obj)
    if isinstance(obj, (PollingProtocol, ScheduleEmitter)):
        parts = []
        for attr in sorted(vars(obj)):
            # prefer the public property over a lazily-filled private
            # slot (EHPP resolves `_subset_size` on first access, and the
            # key must not depend on whether that happened yet)
            value = getattr(obj, attr.lstrip("_"), vars(obj)[attr])
            parts.append(f"{attr.lstrip('_')}={describe(value)}")
        return f"{type(obj).__name__}({', '.join(parts)})"
    if is_dataclass(obj) and not isinstance(obj, type):
        inner = ", ".join(
            f"{f.name}={describe(getattr(obj, f.name))}" for f in fields(obj)
        )
        return f"{type(obj).__name__}({inner})"
    if isinstance(obj, functools.partial):
        kw = ", ".join(f"{k}={describe(v)}" for k, v in sorted(obj.keywords.items()))
        args = ", ".join(describe(a) for a in obj.args)
        inner = ", ".join(x for x in (args, kw) if x)
        return f"partial({describe(obj.func)}, {inner})"
    if callable(obj):
        return getattr(obj, "__qualname__", repr(obj))
    if isinstance(obj, (tuple, list)):
        return "[" + ", ".join(describe(v) for v in obj) + "]"
    return repr(obj)


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def cell_seed_children(
    seed: int, n: int, run: int, streams: int = _CELL_STREAMS
) -> list[np.random.SeedSequence]:
    """Independent seed streams for one ``(n, run)`` trial cell.

    Child 0 draws the tag population, child 1 drives the protocol plan;
    the split guarantees plan randomness is statistically independent of
    the tagset draw while staying a pure function of the coordinates.
    """
    root = np.random.SeedSequence((int(seed), int(n), int(run)))
    return root.spawn(streams)


#: process-local memo of drawn populations.  The tag child depends only
#: on ``(seed, n, run)`` — never the protocol — so sweeping six protocols
#: over one grid redraws nothing.  TagSet is frozen, so sharing is safe.
_tagset_memo: OrderedDict[tuple, TagSet] = OrderedDict()
_TAGSET_MEMO_MAX_TAGS = 2_000_000


def _memoised_tagset(
    seed: int,
    n: int,
    run: int,
    tag_child: np.random.SeedSequence,
    tagset_factory: Callable[[int, np.random.Generator], TagSet],
) -> TagSet:
    key = (int(seed), int(n), int(run), describe(tagset_factory))
    tags = _tagset_memo.get(key)
    if tags is not None:
        _tagset_memo.move_to_end(key)
        return tags
    tags = tagset_factory(int(n), np.random.default_rng(tag_child))
    _tagset_memo[key] = tags
    total = sum(len(t) for t in _tagset_memo.values())
    while len(_tagset_memo) > 1 and total > _TAGSET_MEMO_MAX_TAGS:
        _, evicted = _tagset_memo.popitem(last=False)
        total -= len(evicted)
    return tags


def evaluate_cell(
    protocol: PollingProtocol | ScheduleEmitter,
    n: int,
    run: int,
    seed: int,
    metric: Metric,
    info_bits: int,
    budget: LinkBudget,
    tagset_factory: Callable[[int, np.random.Generator], TagSet],
) -> float | list[float]:
    """Compute one trial cell's metric value (pure function of inputs)."""
    tag_child, plan_child = cell_seed_children(seed, n, run)
    tags = _memoised_tagset(seed, n, run, tag_child, tagset_factory)
    if callable(metric):
        return metric(protocol, tags, plan_child, budget, info_bits)
    if isinstance(protocol, ScheduleEmitter):
        schedule = protocol.emit(
            tags, np.random.default_rng(plan_child),
            info_bits=info_bits, budget=budget,
        )
        if metric == "time_us":
            return float(budget.schedule_us(schedule))
        value = getattr(schedule, metric, None)
        if value is None:
            value = schedule.meta[metric]
        return float(value)
    plan = protocol.plan(tags, np.random.default_rng(plan_child))
    if metric == "time_us":
        return float(budget.plan_us(plan, info_bits))
    return float(getattr(plan, metric))


def _evaluate_chunk(args: tuple) -> tuple[list[float | list[float]], float]:
    """Worker entry point: evaluate a batch of cells, preserving order.

    Also returns the shard's wall-clock seconds, which the parent feeds
    back into the cost model's online update.
    """
    protocol, cells, seed, metric, info_bits, budget, tagset_factory = args
    t0 = time.perf_counter()
    values = [
        evaluate_cell(protocol, n, run, seed, metric, info_bits, budget,
                      tagset_factory)
        for n, run in cells
    ]
    return values, time.perf_counter() - t0


# ----------------------------------------------------------------------
# shared-memory dataplane glue (see repro.experiments.shm)
# ----------------------------------------------------------------------
def _install_arena_tagsets(manifests: dict[tuple, Any]) -> None:
    """Pre-populate this worker's tagset memo from arena manifests.

    ``manifests`` maps a tagset-memo key to the shared-memory manifest
    of the population the parent already drew for that cell.  Attaching
    installs a zero-copy :meth:`TagSet.from_columns` view under the
    exact key :func:`_memoised_tagset` will look up, so every
    evaluation path downstream is untouched — and bit-identical, since
    the attached columns are the parent's draw exported verbatim.  A
    manifest whose segment is gone (evicted) is simply skipped; the
    memo miss regenerates from seed as before.
    """
    if not manifests:
        return
    from repro.experiments import shm as _shm

    for memo_key, manifest in manifests.items():
        if memo_key in _tagset_memo:
            continue
        tags = _shm.attach_tagset(manifest)
        if tags is not None:
            _tagset_memo[memo_key] = tags


def _run_chunk_pickled(blob: bytes) -> tuple[list[float | list[float]], float]:
    """Transport-agnostic shard entry: decode, attach, evaluate.

    ``blob`` is a :func:`repro.experiments.remote.pack_blob` payload —
    the identical bytes whether they arrived through the local pool's
    pipe or a host agent's socket — holding the pickled
    ``(args, manifests)``.  Arena attachment happens *outside* the
    timed region of :func:`_evaluate_chunk`, so shard wall times keep
    feeding the cost model the pure compute cost.
    """
    args, manifests = pickle.loads(unpack_blob(blob))
    _install_arena_tagsets(manifests)
    return _evaluate_chunk(args)


def _run_batch_shard_pickled(blob: bytes) -> tuple[bytes, float]:
    """Shard entry for the batch path (see :func:`_run_chunk_pickled`)."""
    args, manifests = pickle.loads(unpack_blob(blob))
    _install_arena_tagsets(manifests)
    return _evaluate_batch_shard(args)


#: shard entry points by wire name — the vocabulary shared with the
#: host agent's whitelist (repro.experiments.remote._ENTRY_NAMES)
_WORKER_ENTRIES: dict[str, Callable[[bytes], Any]] = {
    "chunk": _run_chunk_pickled,
    "batch": _run_batch_shard_pickled,
}


# ----------------------------------------------------------------------
# the replica-axis fast path
# ----------------------------------------------------------------------
#: plan-derived metrics the batched planners can answer (every name a
#: ScheduleBatch.per_run_metric resolves, plus the costed wire time)
_BATCH_METRICS = frozenset({
    "avg_vector_bits", "n_rounds", "n_polls", "reader_bits",
    "wasted_slots", "time_us",
})


@dataclass(frozen=True)
class DESMetric:
    """Callable sweep metric: a full DES execution per trial cell.

    Each cell's plan stream spawns ``(plan_ss, channel_ss)``: the plan
    draws from a generator over the first child, the channel from one
    over the second — exactly the draw order of the historical
    ``_lossy_trial`` helper — so per-cell and replica-batched evaluation
    produce bit-identical floats, and the frozen field values give the
    metric a stable cache-key description.

    Returns ``[time_s, n_retries]`` per cell.
    """

    #: bit-error rate of the channel; 0 runs the ideal channel.
    ber: float = 0.0
    #: DES population backend (``"array"`` or the ``"machines"`` oracle).
    backend: str = "array"

    def channel(self):
        from repro.phy.channel import BitErrorChannel, IdealChannel

        return BitErrorChannel(self.ber) if self.ber else IdealChannel()

    def __call__(self, protocol, tags, seed_seq, budget, info_bits):
        from repro.sim.executor import execute_plan

        plan_ss, channel_ss = seed_seq.spawn(2)
        plan = protocol.plan(tags, np.random.default_rng(plan_ss))
        res = execute_plan(
            plan, tags, info_bits=info_bits, budget=budget,
            channel=self.channel(), rng=np.random.default_rng(channel_ss),
            keep_trace=False, backend=self.backend,
        )
        if not res.all_read:  # pragma: no cover - invariant
            raise RuntimeError("lossy run failed to read all tags")
        return [res.time_us / 1e6, float(res.n_retries)]


def _supports_batch(
    protocol: PollingProtocol | ScheduleEmitter, metric: Metric
) -> bool:
    """True when ``(protocol, metric)`` can route through the batch path:
    a string plan metric the batch IR can answer on a protocol that
    overrides :meth:`PollingProtocol.plan_schedule_batch`, or a
    :class:`DESMetric` on any planner protocol (the batch executor
    reproduces every cell draw-for-draw; protocols without a lockstep
    driver fall back to per-replica execution inside it)."""
    if isinstance(metric, DESMetric):
        return isinstance(protocol, PollingProtocol)
    return (
        isinstance(metric, str)
        and metric in _BATCH_METRICS
        and isinstance(protocol, PollingProtocol)
        and type(protocol).plan_schedule_batch
        is not PollingProtocol.plan_schedule_batch
    )


def evaluate_cells_batch_des(
    protocol: PollingProtocol,
    cells: Sequence[tuple[int, int]],
    seed: int,
    metric: DESMetric,
    info_bits: int,
    budget: LinkBudget,
    tagset_factory: Callable[[int, np.random.Generator], TagSet],
) -> list[list[float]]:
    """Evaluate many DES-metric cells as one replica-batched execution.

    Each cell becomes one replica: its tagset, plan generator, and
    channel generator derive from the same seed children (and the same
    ``spawn(2)`` split) as :meth:`DESMetric.__call__`, the plans are
    built sequentially in cell order, and the batch executor replays
    them in lockstep — so entry ``i`` is **bit-identical** to
    ``metric(protocol, tags_i, plan_child_i, ...)`` and cached values
    are unchanged.
    """
    if not cells:
        return []
    from repro.sim.batch import execute_plan_batch

    tags_list: list[TagSet] = []
    plans = []
    rngs: list[np.random.Generator] = []
    for n, run in cells:
        tag_child, plan_child = cell_seed_children(seed, n, run)
        tags = _memoised_tagset(seed, n, run, tag_child, tagset_factory)
        plan_ss, channel_ss = plan_child.spawn(2)
        tags_list.append(tags)
        plans.append(protocol.plan(tags, np.random.default_rng(plan_ss)))
        rngs.append(np.random.default_rng(channel_ss))
    results = execute_plan_batch(
        plans, tags_list, info_bits=info_bits, budget=budget,
        channel=metric.channel(), rngs=rngs, backend=metric.backend,
    )
    values: list[list[float]] = []
    for res in results:
        if not res.all_read:  # pragma: no cover - invariant
            raise RuntimeError("lossy run failed to read all tags")
        values.append([res.time_us / 1e6, float(res.n_retries)])
    return values


def evaluate_cells_batch(
    protocol: PollingProtocol,
    cells: Sequence[tuple[int, int]],
    seed: int,
    metric: Metric,
    info_bits: int,
    budget: LinkBudget,
    tagset_factory: Callable[[int, np.random.Generator], TagSet],
) -> list[float] | list[list[float]]:
    """Evaluate many cells as one replica batch.

    Each cell is one replica: its tagset and plan generator derive from
    the same :func:`cell_seed_children` as :func:`evaluate_cell`, the
    batched planner consumes each replica's generator in plan order, and
    the batch coster reduces per run in the sequential order — so entry
    ``i`` is **bit-identical** to ``evaluate_cell(*cells[i], ...)`` and
    cached values are unchanged.  :class:`DESMetric` cells route to the
    replica-batched DES executor instead of the batched planners.
    """
    if not cells:
        return []
    if isinstance(metric, DESMetric):
        return evaluate_cells_batch_des(
            protocol, cells, seed, metric, info_bits, budget, tagset_factory,
        )
    tags_list: list[TagSet] = []
    rngs: list[np.random.Generator] = []
    for n, run in cells:
        tag_child, plan_child = cell_seed_children(seed, n, run)
        tags_list.append(
            _memoised_tagset(seed, n, run, tag_child, tagset_factory)
        )
        rngs.append(np.random.default_rng(plan_child))
    batch = protocol.plan_schedule_batch(tags_list, rngs, reply_bits=info_bits)
    if metric == "time_us":
        return budget.schedule_batch_us(batch).tolist()
    return [float(v) for v in batch.per_run_metric(metric).tolist()]


def _evaluate_batch_shard(args: tuple) -> tuple[bytes, float]:
    """Worker entry point for the batch path.

    Returns the shard's values as raw little-endian float64 bytes —
    ``len(cells) * 8`` bytes instead of a pickled list of Python objects
    — which the parent reassembles with a zero-copy ``np.frombuffer``,
    plus the shard's wall-clock seconds for the cost-model update.
    """
    t0 = time.perf_counter()
    values = evaluate_cells_batch(*args)
    return (
        np.asarray(values, dtype=np.float64).tobytes(),
        time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Memoises per-cell metric values, optionally persisted to disk.

    Every key is salted with the **code-version fingerprint**
    (:func:`repro.experiments.cellstore.cache_version`, overridable via
    ``version`` for tests): entries written by a different version of
    the metric-path source can never be served, which fixes the v1
    cache's silent-staleness bug.

    The in-memory map always participates; when ``directory`` is given,
    entries persist in the columnar segment store of
    :class:`repro.experiments.cellstore.CellStore` (a legacy
    ``cells.jsonl`` found there is migrated on first load).  Writes are
    buffered and sealed into append-only segments — the runner flushes
    after every sweep — and loading compacts away duplicate and
    stale-version garbage once it crosses a threshold.  Only the parent
    process writes — workers return values and the runner stores them —
    so no cross-process locking is needed.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        version: str | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.version = version if version is not None else cache_version()
        self._salt = f"v={self.version}|"
        self._memory: dict[str, float | list[float]] = {}
        self.hits = 0
        self.misses = 0
        self.store: CellStore | None = None
        if self.directory is not None:
            self.store = CellStore(self.directory, version_salt=self._salt)
            self._memory = self.store.load()

    def get(self, key: str) -> float | list[float] | None:
        value = self._memory.get(self._salt + key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: str, value: float | list[float]) -> None:
        key = self._salt + key
        self._memory[key] = value
        if self.store is not None:
            self.store.append(key, value)

    def flush(self) -> None:
        """Seal buffered disk writes as a segment (no-op in memory)."""
        if self.store is not None:
            self.store.flush()

    def __len__(self) -> int:
        return len(self._memory)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
@dataclass
class SweepRunner:
    """Executes Monte-Carlo sweeps: sharded across processes, cached.

    Attributes:
        jobs: worker processes; 1 executes in-process (no pool).
        cache: the cell cache, or ``None`` to recompute everything.
        batch: route plan-derived metrics through the replica-axis
            batched planners — and :class:`DESMetric` cells through the
            replica-batched DES executor — when the protocol supports
            them (bit-identical values, much less Python overhead);
            ``False`` forces the sequential per-cell path everywhere.
        cost_model: predicted per-cell cost table used to pack worker
            shards by cost instead of count (see
            :mod:`repro.experiments.costmodel`); persisted as
            ``costs.json`` next to a disk cache and updated online from
            measured shard times.
        shm: route pool dispatch through the shared-memory dataplane
            (:mod:`repro.experiments.shm`): populations are published
            once into ``/dev/shm`` segments workers attach zero-copy,
            and a persistent warm worker pool is reused across sweeps.
            ``None`` (the default) reads ``REPRO_SHM`` (``auto`` = on,
            ``off`` = legacy per-sweep pools + per-worker
            regeneration).  Values are bit-identical either way.
        hosts: remote host agents (``repro-rfid hostagent``) to dispatch
            shards to over TCP (:mod:`repro.experiments.remote`) — a
            ``"host:port,host:port"`` string or sequence; ``None`` (the
            default) reads ``REPRO_HOSTS``.  When at least one agent
            answers, shards go remote, packed across hosts by predicted
            cost x learned host speed, with manifests degraded to
            inline column bytes; when none answers (or the env is
            unset) behaviour is exactly the local dataplane's.  Values
            are bit-identical on every transport.
        batched_cells / fallback_cells / cached_cells: running coverage
            counters over every sweep this runner has executed (see
            :attr:`batch_coverage`).
        bytes_shipped: payload bytes actually shipped for worker
            dispatch (shard blobs after threshold-gated zlib packing),
            plus the raw float64 result bytes of batch shards — the
            shipping volume the dataplane exists to keep flat as grids
            grow.  ``bytes_raw`` counts the same shard blobs before
            compression; the gap is what the codec saved.
        pool_reused: pool dispatches served by an already-warm
            persistent pool (vs spawning one).
        remote_shards / failovers: shards computed by remote host
            agents, and shards reassigned after a host died mid-sweep
            (every one recomputed exactly once, never lost).

    The active kernel backend (:func:`repro.kernels.active_backend`) is
    reported in :attr:`batch_coverage` and the per-sweep log line for
    observability only — kernel backends are bit-identical by contract,
    so it never enters a cell cache key (a numpy-written cache re-hits
    under numba and vice versa).  The dataplane is equally invisible to
    keys and values by construction.
    """

    jobs: int = 1
    cache: ResultCache | None = field(default_factory=ResultCache)
    batch: bool = True
    shm: bool | None = None
    hosts: str | Sequence[str] | None = None
    cost_model: CostModel = field(default_factory=CostModel, repr=False)
    batched_cells: int = field(default=0, init=False)
    fallback_cells: int = field(default=0, init=False)
    cached_cells: int = field(default=0, init=False)
    bytes_shipped: int = field(default=0, init=False)
    bytes_raw: int = field(default=0, init=False)
    pool_reused: int = field(default=0, init=False)
    remote_shards: int = field(default=0, init=False)
    failovers: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.cache is not None and self.cache.directory is not None:
            self.cost_model.load(self.cache.directory / "costs.json")

    @staticmethod
    def _protocol_label(protocol: PollingProtocol | ScheduleEmitter) -> str:
        return getattr(protocol, "name", type(protocol).__name__)

    @property
    def kernel_backend(self) -> str:
        """The hot-path kernel backend cells are computed with (numpy
        oracle or numba JIT; see :mod:`repro.kernels`)."""
        from repro.kernels import active_backend

        return active_backend()

    @property
    def shm_enabled(self) -> bool:
        """Is the shared-memory dataplane active for this runner?
        (the ``shm`` field when set, else the ``REPRO_SHM`` gate)."""
        if self.shm is not None:
            return self.shm
        from repro.experiments.shm import dataplane_enabled

        return dataplane_enabled()

    @property
    def hosts_tuple(self) -> tuple[str, ...]:
        """The configured remote hosts (the ``hosts`` field when set,
        else ``REPRO_HOSTS``); empty means pure-local, exactly the
        pre-distributed behaviour."""
        if self.hosts is not None:
            return parse_hosts(self.hosts)
        return parse_hosts(os.environ.get("REPRO_HOSTS"))

    def _remote_dispatcher(self):
        """The live dispatcher for this runner's hosts, or ``None``
        (no hosts configured, or no agent currently answering)."""
        hosts = self.hosts_tuple
        if not hosts:
            return None
        from repro.experiments.remote import get_dispatcher

        return get_dispatcher(hosts)

    def _dispatch_width(self) -> int:
        """How many shards to pack a sweep into: the remote fleet's
        summed advertised cores while agents are live (floor 2, so even
        a one-core agent gets pipelined dispatch), else local ``jobs``."""
        dispatcher = self._remote_dispatcher()
        if dispatcher is not None:
            return max(dispatcher.total_cores(), 2)
        return self.jobs

    @property
    def batch_coverage(self) -> dict[str, int | float | str]:
        """Replica-batch routing stats across every sweep so far:
        computed cells that took the batched path, computed cells that
        fell back to sequential per-cell evaluation, cache-served cells,
        the batched fraction of the computed cells, the kernel backend
        the computed cells ran on, and the dataplane counters (bytes
        shipped to workers, live shared-memory segments/bytes, warm
        pool reuses)."""
        from repro.experiments.shm import arena_stats

        computed = self.batched_cells + self.fallback_cells
        shm_segments, shm_bytes = arena_stats()
        hosts_live = 0
        if self.hosts_tuple:
            from repro.experiments.remote import live_host_count

            hosts_live = live_host_count(self.hosts_tuple)
        return {
            "batched_cells": self.batched_cells,
            "fallback_cells": self.fallback_cells,
            "cached_cells": self.cached_cells,
            "batched_fraction":
                self.batched_cells / computed if computed else 0.0,
            "kernel_backend": self.kernel_backend,
            "bytes_shipped": self.bytes_shipped,
            "bytes_raw": self.bytes_raw,
            "shm_segments": shm_segments,
            "shm_bytes": shm_bytes,
            "pool_reused": self.pool_reused,
            "hosts_live": hosts_live,
            "remote_shards": self.remote_shards,
            "failovers": self.failovers,
        }

    # ------------------------------------------------------------------
    def _cell_key(
        self,
        protocol_desc: str,
        n: int,
        run: int,
        seed: int,
        metric: Metric,
        info_bits: int,
        budget: LinkBudget,
        tagset_factory: Callable,
    ) -> str:
        return "|".join([
            protocol_desc,
            f"n={int(n)}",
            f"run={int(run)}",
            f"seed={int(seed)}",
            f"metric={describe(metric)}",
            f"info_bits={int(info_bits)}",
            f"budget={describe(budget)}",
            f"tagset={describe(tagset_factory)}",
        ])

    def _publish_tagsets(
        self,
        cells: Sequence[tuple[int, int]],
        seed: int,
        tagset_factory: Callable,
    ) -> dict[tuple, Any]:
        """Publish each distinct cell population into the shared arena.

        Returns ``{tagset-memo key -> SegmentManifest}`` for the cells
        whose columns made it into shared memory (large enough, arena
        healthy) — exactly what :func:`_install_arena_tagsets` consumes
        worker-side.  Populations are drawn through the parent's own
        :func:`_memoised_tagset`, so a population published for one
        protocol's sweep is a memo hit (and a manifest hit) for the
        next five protocols over the same grid.
        """
        if not self.shm_enabled:
            return {}
        from repro.experiments import shm as _shm

        arena = _shm.get_arena()
        if arena.failed:
            return {}
        factory_desc = describe(tagset_factory)
        manifests: dict[tuple, Any] = {}
        for n, run in dict.fromkeys((int(n), int(r)) for n, r in cells):
            key_str = f"tags|seed={int(seed)}|n={n}|run={run}|{factory_desc}"
            manifest = arena.manifest(key_str)
            if manifest is None:
                tag_child, _ = cell_seed_children(seed, n, run)
                tags = _memoised_tagset(seed, n, run, tag_child,
                                        tagset_factory)
                manifest = arena.publish(key_str, tags.columns())
            if manifest is not None:
                manifests[(int(seed), n, run, factory_desc)] = manifest
        return manifests

    def _dispatch_shards(
        self,
        kind: str,
        shard_args: list[tuple],
        manifests: dict[tuple, Any],
        shard_costs: Sequence[float] | None = None,
    ) -> list[Any] | None:
        """Ship shard blobs to workers; ``None`` = fall back in-process.

        ``kind`` names the transport-agnostic entry point (``"chunk"``
        or ``"batch"``).  The explicit ``pickle.dumps`` here *is* the
        shipment, packed through the same threshold-gated zlib codec the
        socket frames use — so picklability is validated by doing the
        real serialization once (an unpicklable configuration returns
        ``None`` and the caller degrades to in-process, as before),
        ``bytes_raw`` counts the pickles and ``bytes_shipped`` what
        actually crossed the boundary after compression.

        When remote hosts are configured and at least one agent answers,
        the blobs go over TCP instead (manifests degraded to inline
        column bytes), packed across hosts by ``shard_costs``; a remote
        dispatch that comes back empty-handed degrades to the local
        pool.  Locally, dispatch goes to the persistent warm pool when
        the dataplane is on; a broken pool (worker died mid-shard) is
        disposed and the sweep falls back in-process rather than
        failing.
        """
        worker_fn = _WORKER_ENTRIES[kind]
        try:
            raw_blobs = [pickle.dumps((args, manifests)) for args in shard_args]
        except Exception:
            return None
        dispatcher = self._remote_dispatcher()
        if dispatcher is not None:
            results = self._dispatch_remote(
                dispatcher, kind, shard_args, manifests, shard_costs,
            )
            if results is not None:
                return results
        blobs = [pack_blob(raw) for raw in raw_blobs]
        from repro.experiments import shm as _shm

        if self.shm_enabled:
            try:
                pool, reused = _shm.get_worker_pool(self.jobs)
            except Exception:
                return None
            self.pool_reused += 1 if reused else 0
            try:
                results = pool.map(worker_fn, blobs)
            except BrokenProcessPool:
                _shm.shutdown_worker_pool()
                return None
        else:
            import multiprocessing

            ctx = multiprocessing.get_context(_shm.resolve_start_method())
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(blobs)), mp_context=ctx,
                ) as pool:
                    results = list(pool.map(worker_fn, blobs))
            except BrokenProcessPool:
                return None
        self.bytes_raw += sum(len(b) for b in raw_blobs)
        self.bytes_shipped += sum(len(b) for b in blobs)
        return results

    def _dispatch_remote(
        self,
        dispatcher,
        kind: str,
        shard_args: list[tuple],
        manifests: dict[tuple, Any],
        shard_costs: Sequence[float] | None,
    ) -> list[Any] | None:
        """Ship the shards to host agents; ``None`` = use the local pool.

        Manifests are re-issued with inline column bytes
        (:meth:`ColumnArena.inline_manifest`) because a remote worker
        cannot reach this machine's ``/dev/shm``; everything else about
        the payload is identical to local dispatch, so so are the
        computed bits.  Host speeds are seeded from each agent's
        advertised throughput (normalised to the live mean) and updated
        by EMA from dispatcher-side round-trip clocks: each host's
        completed predicted cost over its busy core-seconds, so
        serialization and network time count against the host and a
        fast box behind a slow link is packed like a slow box.
        """
        inline: dict[tuple, Any] = {}
        if manifests:
            from repro.experiments import shm as _shm

            arena = _shm.get_arena()
            for memo_key, manifest in manifests.items():
                m = arena.inline_manifest(manifest.key)
                if m is not None:
                    inline[memo_key] = m
        try:
            raw_blobs = [pickle.dumps((args, inline)) for args in shard_args]
        except Exception:
            return None
        blobs = [pack_blob(raw) for raw in raw_blobs]
        live = dispatcher.live()
        throughputs = {
            a: c.throughput for a, c in live.items() if c.throughput > 0
        }
        if throughputs:
            mean = sum(throughputs.values()) / len(throughputs)
            for address, throughput in throughputs.items():
                self.cost_model.seed_host(address, throughput / mean)
        capacities = {
            a: c.cores * self.cost_model.host_speed(a)
            for a, c in live.items()
        }
        costs = (
            list(shard_costs) if shard_costs is not None
            else [1.0] * len(blobs)
        )
        failovers_before = dispatcher.failovers
        try:
            outcomes = dispatcher.run(
                kind, blobs, costs, capacities, _WORKER_ENTRIES[kind],
            )
        except Exception:
            _log.warning(
                "remote dispatch failed; using the local pool", exc_info=True,
            )
            return None
        if outcomes is None:
            return None
        self.bytes_raw += sum(len(b) for b in raw_blobs)
        self.bytes_shipped += sum(len(b) for b in blobs)
        self.failovers += dispatcher.failovers - failovers_before
        results: list[Any] = []
        for result, host in outcomes:
            results.append(result)
            if host != "local":
                self.remote_shards += 1
        for address, (cost_done, core_seconds) in (
            dispatcher.last_host_stats.items()
        ):
            self.cost_model.observe_host(address, cost_done, core_seconds)
        return results

    def _compute(
        self,
        protocol: PollingProtocol | ScheduleEmitter,
        cells: Sequence[tuple[int, int]],
        seed: int,
        metric: Metric,
        info_bits: int,
        budget: LinkBudget,
        tagset_factory: Callable,
    ) -> list[float | list[float]]:
        """Evaluate ``cells`` in order, using the process pool if asked."""
        if not cells:
            return []
        if self.batch and _supports_batch(protocol, metric):
            return self._compute_batch(
                protocol, cells, seed, metric, info_bits, budget,
                tagset_factory,
            )
        label = self._protocol_label(protocol)
        width = self._dispatch_width()
        if width > 1 and len(cells) > 1:
            n_workers = min(width, len(cells))
            # pack shards by predicted cost (LPT), not by count, so a few
            # expensive cells don't straggle one worker while others idle
            costs = self.cost_model.predict_cells(label, cells)
            shard_idx = greedy_shards(costs, n_workers)
            manifests = self._publish_tagsets(cells, seed, tagset_factory)
            shard_args = [
                (protocol, [cells[i] for i in shard], seed, metric,
                 info_bits, budget, tagset_factory)
                for shard in shard_idx
            ]
            shard_costs = [
                sum(costs[i] for i in shard) for shard in shard_idx
            ]
            shard_results = self._dispatch_shards(
                "chunk", shard_args, manifests, shard_costs,
            )
            if shard_results is not None:
                # reassemble by original cell index (inverse of packing)
                values: list[Any] = [None] * len(cells)
                for shard, (chunk, elapsed) in zip(shard_idx, shard_results):
                    for i, value in zip(shard, chunk):
                        values[i] = value
                    self.cost_model.observe(
                        label, [cells[i] for i in shard], elapsed
                    )
                return values
        # serial path, or pool dispatch declined/failed
        values, elapsed = _evaluate_chunk(
            (protocol, list(cells), seed, metric, info_bits, budget,
             tagset_factory)
        )
        self.cost_model.observe(label, cells, elapsed)
        return values

    def _compute_batch(
        self,
        protocol: PollingProtocol,
        cells: Sequence[tuple[int, int]],
        seed: int,
        metric: Metric,
        info_bits: int,
        budget: LinkBudget,
        tagset_factory: Callable,
    ) -> list[float] | list[list[float]]:
        """Replica-axis evaluation: every cell is one replica of a batch.

        The pool splits the *replica* axis into contiguous chunks whose
        boundaries balance *predicted cost*, not cell count — each
        worker plans and costs its replicas as one joint batch, and ships
        the length-``len(chunk)`` result vector back as raw float64
        bytes instead of pickled objects.  Results are bit-identical to
        the sequential path for any ``jobs``.
        """
        label = self._protocol_label(protocol)
        width = self._dispatch_width()
        if width > 1 and len(cells) > 1:
            n_workers = min(width, len(cells))
            costs = self.cost_model.predict_cells(label, cells)
            bounds = balanced_contiguous_bounds(costs, n_workers)
            manifests = self._publish_tagsets(cells, seed, tagset_factory)
            shard_args = [
                (protocol, list(cells[bounds[w]:bounds[w + 1]]), seed,
                 metric, info_bits, budget, tagset_factory)
                for w in range(len(bounds) - 1)
            ]
            shard_costs = [
                sum(costs[bounds[w]:bounds[w + 1]])
                for w in range(len(bounds) - 1)
            ]
            shard_results = self._dispatch_shards(
                "batch", shard_args, manifests, shard_costs,
            )
            if shard_results is not None:
                for w, (_, elapsed) in enumerate(shard_results):
                    self.cost_model.observe(
                        label, cells[bounds[w]:bounds[w + 1]], elapsed
                    )
                self.bytes_shipped += sum(
                    len(blob) for blob, _ in shard_results
                )
                flat = np.frombuffer(
                    b"".join(blob for blob, _ in shard_results),
                    dtype=np.float64,
                )
                if isinstance(metric, DESMetric):  # multi-component rows
                    return flat.reshape(len(cells), -1).tolist()
                return flat.tolist()
        t0 = time.perf_counter()
        values = evaluate_cells_batch(
            protocol, list(cells), seed, metric, info_bits, budget,
            tagset_factory,
        )
        self.cost_model.observe(label, cells, time.perf_counter() - t0)
        return values

    # ------------------------------------------------------------------
    def sweep_values(
        self,
        protocol: PollingProtocol | ScheduleEmitter,
        n_values: Sequence[int],
        n_runs: int = 20,
        seed: int = 0,
        metric: Metric = "avg_vector_bits",
        info_bits: int = 1,
        budget: LinkBudget | None = None,
        tagset_factory: Callable[[int, np.random.Generator], TagSet] = uniform_tagset,
    ) -> np.ndarray:
        """Per-``n`` trial means, shape ``(len(n_values), n_components)``.

        Scalar metrics yield one component; callable metrics returning a
        list yield one column per element.  The reduction always sums in
        ``run`` order, so the output is bit-identical for any ``jobs``.
        """
        budget = budget if budget is not None else LinkBudget()
        proto_desc = describe(protocol)
        grid = [(int(n), run) for n in n_values for run in range(n_runs)]
        keys = [
            self._cell_key(proto_desc, n, run, seed, metric, info_bits,
                           budget, tagset_factory)
            for n, run in grid
        ]
        values: list[float | list[float] | None]
        if self.cache is not None:
            values = [self.cache.get(key) for key in keys]
        else:
            values = [None] * len(grid)
        missing = [i for i, v in enumerate(values) if v is None]
        computed = self._compute(
            protocol, [grid[i] for i in missing], seed, metric, info_bits,
            budget, tagset_factory,
        )
        for i, value in zip(missing, computed):
            values[i] = value
            if self.cache is not None:
                self.cache.put(keys[i], value)
        if self.cache is not None and missing:
            # seal this sweep's cells as a segment: a crash later costs
            # at most the next sweep's in-flight cells
            self.cache.flush()
            if self.cache.directory is not None:
                self.cost_model.save(self.cache.directory / "costs.json")
        batched = bool(missing) and self.batch and _supports_batch(protocol, metric)
        self.batched_cells += len(missing) if batched else 0
        self.fallback_cells += 0 if batched else len(missing)
        self.cached_cells += len(grid) - len(missing)
        _log.info(
            "sweep %s metric=%s: %d cells (%d cached, %d %s, kernels=%s, "
            "shipped=%dB, pool_reused=%d)",
            getattr(protocol, "name", type(protocol).__name__),
            describe(metric), len(grid), len(grid) - len(missing),
            len(missing), "batched" if batched else "per-cell",
            self.kernel_backend, self.bytes_shipped, self.pool_reused,
        )
        table = np.asarray(
            [np.atleast_1d(np.asarray(v, dtype=float)) for v in values]
        ).reshape(len(n_values), n_runs, -1)
        return table.sum(axis=1) / n_runs

    def sweep(
        self,
        protocol_or_factory: (
            PollingProtocol | ScheduleEmitter
            | Callable[[], PollingProtocol | ScheduleEmitter]
        ),
        n_values: Sequence[int],
        n_runs: int = 20,
        seed: int = 0,
        metric: Metric = "avg_vector_bits",
        info_bits: int = 1,
        budget: LinkBudget | None = None,
        tagset_factory: Callable[[int, np.random.Generator], TagSet] = uniform_tagset,
    ):
        """Average a scalar metric over the grid; returns a ``Series``."""
        from repro.experiments.common import Series

        protocol = (
            protocol_or_factory
            if isinstance(protocol_or_factory, (PollingProtocol, ScheduleEmitter))
            else protocol_or_factory()
        )
        means = self.sweep_values(
            protocol, n_values, n_runs=n_runs, seed=seed, metric=metric,
            info_bits=info_bits, budget=budget, tagset_factory=tagset_factory,
        )
        return Series(
            label=protocol.name,
            x=list(map(float, n_values)),
            y=[float(v) for v in means[:, 0]],
        )


# ----------------------------------------------------------------------
# process-wide default (configured by the experiments CLI)
# ----------------------------------------------------------------------
_default_runner = SweepRunner()


def get_default_runner() -> SweepRunner:
    """The runner experiment functions use when none is passed."""
    return _default_runner


def set_default_runner(runner: SweepRunner) -> SweepRunner:
    global _default_runner
    _default_runner = runner
    return _default_runner


def configure_default_runner(
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    batch: bool = True,
    shm: bool | None = None,
    hosts: str | Sequence[str] | None = None,
) -> SweepRunner:
    """Build and install the default runner (the CLI's entry point)."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache = ResultCache(cache_dir) if use_cache else None
    return set_default_runner(
        SweepRunner(jobs=jobs, cache=cache, batch=batch, shm=shm, hosts=hosts)
    )
