"""Regenerators for every figure in the paper's evaluation.

Each ``figN`` function returns an :class:`ExperimentResult` whose series
reproduce the corresponding figure's curves.  Default parameters match
the paper (100 simulation runs, n up to 10⁵); the benchmark suite calls
the same functions with reduced ``n_runs``/``n`` so a full bench pass
stays fast, and EXPERIMENTS.md records a full-scale run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SweepRunner

from repro.analysis import ehpp_model, exec_time, hpp_model, tpp_model
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.common import ExperimentResult, Series, sweep_protocol
from repro.phy.commands import CommandSizes
from repro.phy.timing import PAPER_TIMING

__all__ = ["fig1", "fig3", "fig4", "fig5", "fig8", "fig9", "fig10"]

#: the paper's Fig-3/5/9/10 x axis: 10⁴ … 10⁵ tags ("x10,000")
_DEFAULT_NS = tuple(range(10_000, 100_001, 10_000))


def fig1(max_vector_bits: int = 96, info_bits: int = 1) -> ExperimentResult:
    """Fig. 1: execution time vs polling-vector length (per tag, ms)."""
    w, t_ms = exec_time.execution_time_curve(max_vector_bits, info_bits)
    return ExperimentResult(
        name="fig1",
        title="execution time vs length of the polling vector",
        series=[Series("exec_time_ms", w.tolist(), t_ms.tolist())],
        notes={
            "slope_us_per_bit": PAPER_TIMING.reader_bit_us,
            "info_bits": info_bits,
        },
    )


def fig3(n_values: Sequence[int] = _DEFAULT_NS) -> ExperimentResult:
    """Fig. 3: HPP analytic average vector length w̄ vs n (eq. 4)."""
    ys = [hpp_model.expected_vector_length(n) for n in n_values]
    bounds = [hpp_model.vector_length_upper_bound(n) for n in n_values]
    return ExperimentResult(
        name="fig3",
        title="HPP average polling-vector length (analysis, eq. 4)",
        series=[
            Series("HPP_w", list(map(float, n_values)), ys),
            Series("upper_bound_log2n", list(map(float, n_values)), bounds),
        ],
        notes={"all_under_16_bits": max(ys) < 16.5},
    )


def fig4(lc_values: Sequence[int] = tuple(range(50, 501, 25))) -> ExperimentResult:
    """Fig. 4: optimal EHPP subset size vs circle-command length l_c.

    Shows the numeric optimum sandwiched by Theorem 1's bounds
    ``[l_c ln2, e l_c ln2]``.
    """
    lows, highs, optima, global_opt = [], [], [], []
    for lc in lc_values:
        lo, hi = ehpp_model.subset_size_bounds(lc)
        lows.append(lo)
        highs.append(hi)
        optima.append(float(ehpp_model.optimal_subset_size(lc, 0)))
        global_opt.append(
            float(ehpp_model.optimal_subset_size(lc, 0, global_search=True))
        )
    return ExperimentResult(
        name="fig4",
        title="optimal subset size n* vs circle-command length (Theorem 1)",
        series=[
            Series("lower_bound", list(map(float, lc_values)), lows),
            Series("optimal", list(map(float, lc_values)), optima),
            Series("upper_bound", list(map(float, lc_values)), highs),
            Series("global_discrete_opt", list(map(float, lc_values)), global_opt),
        ],
        notes={
            "global_discrete_opt": "true stepwise-cost optimum; may sit "
            "just below a power of two outside the bracket (<2% cost gap)"
        },
    )


def fig5(
    n_values: Sequence[int] = _DEFAULT_NS,
    lc_values: Sequence[int] = (100, 200, 400),
) -> ExperimentResult:
    """Fig. 5: EHPP analytic w̄ vs n for several circle-command lengths."""
    series = []
    for lc in lc_values:
        ys = [ehpp_model.expected_vector_length(n, lc) for n in n_values]
        series.append(Series(f"l_c={lc}", list(map(float, n_values)), ys))
    return ExperimentResult(
        name="fig5",
        title="EHPP average polling-vector length (analysis)",
        series=series,
        notes={"paper_value_lc200_at_1e5": 7.94},
    )


def fig8(lam_max: float = 4.0, points: int = 200) -> ExperimentResult:
    """Fig. 8: singleton probability µ = λe^{−λ}, peak 1/e at λ = 1."""
    lam = np.linspace(1e-3, lam_max, points)
    mu = [tpp_model.singleton_probability(x) for x in lam]
    return ExperimentResult(
        name="fig8",
        title="singleton probability µ vs load λ = n/2^h",
        series=[Series("mu", lam.tolist(), mu)],
        notes={"peak_lambda": 1.0, "peak_mu": float(np.exp(-1.0))},
    )


def fig9(n_values: Sequence[int] = tuple(
    list(range(1_000, 10_000, 1_000)) + list(_DEFAULT_NS)
)) -> ExperimentResult:
    """Fig. 9: TPP analytic w̄ vs n (worst-case tree, eqs. 6/8/11/15)."""
    ys = [tpp_model.expected_vector_length(n) for n in n_values]
    exact = [tpp_model.expected_vector_length(n, exact=True) for n in n_values]
    return ExperimentResult(
        name="fig9",
        title="TPP average polling-vector length (analysis)",
        series=[
            Series("TPP_w_worst_case", list(map(float, n_values)), ys),
            Series("TPP_w_exact_trie", list(map(float, n_values)), exact),
        ],
        notes={
            "paper_level": 3.38,
            "global_bound": tpp_model.global_upper_bound(),
        },
    )


def fig10(
    n_values: Sequence[int] = _DEFAULT_NS,
    n_runs: int = 100,
    seed: int = 0,
    runner: "SweepRunner | None" = None,
) -> ExperimentResult:
    """Fig. 10: *simulated* average vector length of HPP / EHPP / TPP.

    Paper setting: EHPP circle command 128 bits, per-round initiation
    32 bits, 100 runs per point.  Trials run through the parallel,
    cached sweep engine (``runner``; the CLI-configured default when
    ``None``).
    """
    commands = CommandSizes(round_init=32, circle_command=128)
    series = [
        sweep_protocol(HPP(commands=commands), n_values, n_runs, seed,
                       runner=runner),
        sweep_protocol(EHPP(commands=commands), n_values, n_runs, seed,
                       runner=runner),
        sweep_protocol(TPP(commands=commands), n_values, n_runs, seed,
                       runner=runner),
    ]
    return ExperimentResult(
        name="fig10",
        title="simulated average polling-vector length vs n",
        series=series,
        notes={
            "paper": "HPP grows ~log n (≈16 @1e5); EHPP ≈9.0 flat; TPP ≈3.06 flat",
            "n_runs": n_runs,
        },
    )
