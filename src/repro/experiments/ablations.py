"""Ablation studies for the design choices DESIGN.md calls out.

Beyond reproducing the paper, these sweeps isolate *why* each design
decision matters:

- ``ablate_tpp_index_policy`` — TPP's tree encoding under HPP's covering
  policy vs the singleton-maximising policy of eq. (15) vs other fixed
  load factors: shows the λ ≈ ln 2 sweet spot.
- ``ablate_ehpp_subset_size`` — EHPP cost around the optimal n*:
  validates Theorem 1's bracket empirically.
- ``ablate_mic_hash_count`` — MIC's k from 1 to 8: the slot-waste /
  indicator-overhead trade-off the related work discusses.
- ``ablate_ecpp_clustering`` — enhanced CPP on clustered vs uniform IDs:
  quantifies "relies on the specific distribution of tag IDs".
"""

from __future__ import annotations

import functools
from typing import Sequence

import numpy as np

from repro.baselines.mic import MIC
from repro.core.cpp import CPP, EnhancedCPP
from repro.core.ehpp import EHPP
from repro.core.planner import CoveringPolicy, FixedLoadPolicy, SingletonMaxPolicy
from repro.core.tpp import TPP
from repro.experiments.common import ExperimentResult, Series
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import clustered_tagset, uniform_tagset

__all__ = [
    "ablate_tpp_index_policy",
    "ablate_ehpp_subset_size",
    "ablate_mic_hash_count",
    "ablate_ecpp_clustering",
]


def _mean_vector_bits(protocol, n: int, n_runs: int, seed: int,
                      tagset_factory=uniform_tagset) -> float:
    from repro.experiments.runner import get_default_runner

    means = get_default_runner().sweep_values(
        protocol, [n], n_runs=n_runs, seed=seed,
        metric="avg_vector_bits", tagset_factory=tagset_factory,
    )
    return float(means[0, 0])


def _mic_time_and_waste(protocol, tags, seed_seq, budget, info_bits):
    """Trial metric for the MIC ablation: [time (s), wasted-slot frac]."""
    plan = protocol.plan(tags, np.random.default_rng(seed_seq))
    total_slots = sum(r.extra["frame_size"] for r in plan.rounds)
    return [
        budget.plan_us(plan, info_bits) / 1e6,
        plan.wasted_slots / total_slots,
    ]


def ablate_tpp_index_policy(
    n: int = 20_000, n_runs: int = 20, seed: int = 0,
    loads: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
) -> ExperimentResult:
    """TPP vector length under different index-length policies."""
    labels, ys = [], []
    for policy, label in (
        [(SingletonMaxPolicy(), "eq15 (λ≈ln2)"), (CoveringPolicy(), "covering (HPP's)")]
        + [(FixedLoadPolicy(target=t), f"λ*={t}") for t in loads]
    ):
        labels.append(label)
        ys.append(_mean_vector_bits(TPP(policy=policy), n, n_runs, seed))
    return ExperimentResult(
        name="ablate_tpp_policy",
        title=f"TPP vector bits vs index-length policy (n={n})",
        series=[Series(lbl, [float(n)], [y]) for lbl, y in zip(labels, ys)],
        notes={"expect": "eq15 minimises the per-tag tree bits"},
    )


def ablate_ehpp_subset_size(
    n: int = 20_000,
    n_runs: int = 10,
    seed: int = 0,
    subset_sizes: Sequence[int] = (30, 60, 90, 130, 200, 300, 500, 1_000),
) -> ExperimentResult:
    """EHPP cost as the circle subset size sweeps around n*."""
    xs, ys = [], []
    for n_star in subset_sizes:
        xs.append(float(n_star))
        ys.append(_mean_vector_bits(EHPP(subset_size=n_star), n, n_runs, seed))
    return ExperimentResult(
        name="ablate_ehpp_subset",
        title=f"EHPP vector bits vs subset size (n={n}, l_c=128)",
        series=[Series("EHPP", xs, ys)],
        notes={"theorem1_bracket_lc128": (128 * np.log(2), np.e * 128 * np.log(2))},
    )


def ablate_mic_hash_count(
    n: int = 20_000,
    n_runs: int = 10,
    seed: int = 0,
    info_bits: int = 1,
    ks: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
) -> ExperimentResult:
    """MIC execution time and slot waste as k grows."""
    from repro.experiments.runner import get_default_runner

    budget = LinkBudget()
    runner = get_default_runner()
    xs = [float(k) for k in ks]
    times, waste = [], []
    for k in ks:
        means = runner.sweep_values(
            MIC(k=k), [n], n_runs=n_runs, seed=seed,
            metric=_mic_time_and_waste, info_bits=info_bits, budget=budget,
        )
        times.append(float(means[0, 0]))
        waste.append(float(means[0, 1]))
    return ExperimentResult(
        name="ablate_mic_k",
        title=f"MIC vs hash count k (n={n}, {info_bits}-bit)",
        series=[Series("time_s", xs, times), Series("wasted_slot_frac", xs, waste)],
        notes={"paper_claim": "waste 63.2% @k=1 -> 13.9% @k=7"},
    )


def ablate_ecpp_clustering(
    n: int = 5_000, n_runs: int = 10, seed: int = 0,
    n_categories: Sequence[int] = (1, 2, 8, 64, 1024),
) -> ExperimentResult:
    """Enhanced CPP on clustered IDs vs plain CPP: distribution-dependent."""
    cpp_bits = _mean_vector_bits(CPP(), n, n_runs, seed)
    xs, ys = [], []
    for cats in n_categories:
        xs.append(float(cats))
        ys.append(
            _mean_vector_bits(
                EnhancedCPP(category_bits=32),
                n,
                n_runs,
                seed,
                # partial (not a lambda) keeps the factory picklable for
                # the process pool and stable in the cache key
                tagset_factory=functools.partial(
                    clustered_tagset, n_categories=cats
                ),
            )
        )
    uniform_bits = _mean_vector_bits(EnhancedCPP(category_bits=32), n, n_runs, seed)
    return ExperimentResult(
        name="ablate_ecpp",
        title=f"enhanced CPP vector bits vs ID clustering (n={n})",
        series=[Series("eCPP_clustered", xs, ys)],
        notes={
            "CPP": cpp_bits,
            "eCPP_on_uniform_ids": uniform_bits,
            "paper": "still >= 64 bits with a 32-bit category — far from efficient",
        },
    )
