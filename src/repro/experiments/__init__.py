"""Experiment regenerators: one callable per paper figure and table.

Run ``python -m repro.experiments`` for the full evaluation (the rows
recorded in EXPERIMENTS.md), or call the functions individually:

>>> from repro.experiments import fig10, table1
>>> print(fig10(n_values=[10_000], n_runs=5).render())  # doctest: +SKIP
"""

from repro.experiments.ablations import (
    ablate_ecpp_clustering,
    ablate_ehpp_subset_size,
    ablate_mic_hash_count,
    ablate_tpp_index_policy,
)
from repro.experiments.cellstore import CellStore, cache_version
from repro.experiments.common import ExperimentResult, Series
from repro.experiments.costmodel import CostModel
from repro.experiments.extensions import ext_energy, ext_lossy_channel, ext_multi_reader
from repro.experiments.figures import fig1, fig3, fig4, fig5, fig8, fig9, fig10
from repro.experiments.inventory import ChurnMetric, ext_churn
from repro.experiments.runner import (
    ResultCache,
    SweepRunner,
    configure_default_runner,
    get_default_runner,
    set_default_runner,
)
from repro.experiments.tables import (
    TableResult,
    execution_time_table,
    table1,
    table2,
    table3,
)

__all__ = [
    "CellStore",
    "CostModel",
    "ExperimentResult",
    "ResultCache",
    "Series",
    "SweepRunner",
    "TableResult",
    "cache_version",
    "configure_default_runner",
    "get_default_runner",
    "set_default_runner",
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "fig10",
    "execution_time_table",
    "table1",
    "table2",
    "table3",
    "ablate_tpp_index_policy",
    "ablate_ehpp_subset_size",
    "ablate_mic_hash_count",
    "ablate_ecpp_clustering",
    "ext_lossy_channel",
    "ext_energy",
    "ext_churn",
    "ChurnMetric",
    "ext_multi_reader",
]
