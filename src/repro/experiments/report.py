"""Markdown report writer: render experiment results side by side with

the paper's reported values.  Used to regenerate the body of
EXPERIMENTS.md programmatically (``python -m repro.experiments`` prints
plain text; :func:`write_markdown_report` produces the document form).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.tables import TableResult

__all__ = [
    "series_table_md",
    "table_md",
    "comparison_row_md",
    "write_markdown_report",
]


def series_table_md(result: ExperimentResult, float_fmt: str = "{:.3f}") -> str:
    """Render an ExperimentResult as a GitHub-flavoured markdown table."""
    header = ["x"] + [s.label for s in result.series]
    lines = [
        f"### {result.name} — {result.title}",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    xs = result.series[0].x
    for i, x in enumerate(xs):
        cells = [f"{x:g}"]
        for s in result.series:
            cells.append(float_fmt.format(s.y[i]) if i < len(s.y) else "—")
        lines.append("| " + " | ".join(cells) + " |")
    for key, value in result.notes.items():
        lines.append(f"\n*{key}*: {value}")
    return "\n".join(lines) + "\n"


def table_md(table: TableResult, float_fmt: str = "{:.2f}") -> str:
    """Render a TableResult (Tables I–III) as markdown."""
    header = ["protocol"] + [f"n={n:,}" for n in table.n_values]
    lines = [
        f"### {table.name} — execution time (s), "
        f"{table.info_bits}-bit information",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for name, values in table.seconds.items():
        cells = [name] + [float_fmt.format(v) for v in values]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def comparison_row_md(
    label: str, paper_value: float, measured: float, fmt: str = "{:.2f}"
) -> str:
    """One 'paper vs measured' bullet with the relative deviation."""
    if paper_value == 0:
        raise ValueError("paper_value must be non-zero for a relative check")
    dev = (measured - paper_value) / paper_value * 100
    return (
        f"- **{label}**: paper {fmt.format(paper_value)}, "
        f"measured {fmt.format(measured)} ({dev:+.1f} %)"
    )


def write_markdown_report(
    path: str | Path,
    results: Sequence[ExperimentResult | TableResult],
    title: str = "Experiment report",
) -> Path:
    """Write all results into one markdown document."""
    path = Path(path)
    parts = [f"# {title}", ""]
    for result in results:
        if isinstance(result, TableResult):
            parts.append(table_md(result))
        else:
            parts.append(series_table_md(result))
    path.write_text("\n".join(parts), encoding="utf-8")
    return path
