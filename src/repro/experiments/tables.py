"""Regenerators for Tables I–III: execution time of information collection.

Each table compares CPP / HPP / EHPP / MIC(k=7) / TPP and the lower
bound while collecting 1-, 16- and 32-bit information over populations
of 100 … 100 000 tags, averaged over seeded runs (the paper uses 100
runs; pass ``n_runs`` to trade precision for speed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.baselines.mic import MIC
from repro.core.base import PollingProtocol
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.common import render_table
from repro.experiments.paper_values import TABLE_N_COLUMNS
from repro.phy.commands import CommandSizes
from repro.phy.link import LinkBudget, lower_bound_us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SweepRunner

__all__ = ["TableResult", "execution_time_table", "table1", "table2", "table3"]


def paper_protocols() -> list[PollingProtocol]:
    """The five protocols of Tables I–III, with the paper's parameters."""
    commands = CommandSizes(round_init=32, circle_command=128)
    return [
        CPP(),
        HPP(commands=commands),
        EHPP(commands=commands),
        MIC(k=7),
        TPP(commands=commands),
    ]


@dataclass
class TableResult:
    """One reproduced table: seconds per protocol per population size."""

    name: str
    info_bits: int
    n_values: tuple[int, ...]
    seconds: dict[str, list[float]]  # protocol -> per-column times
    notes: dict[str, object] = field(default_factory=dict)

    def row(self, protocol: str) -> list[float]:
        return self.seconds[protocol]

    def cell(self, protocol: str, n: int) -> float:
        return self.seconds[protocol][self.n_values.index(n)]

    def render(self) -> str:
        return render_table(
            f"{self.name} — execution time (s), {self.info_bits}-bit information",
            "n =",
            self.n_values,
            self.seconds,
        )


def execution_time_table(
    info_bits: int,
    n_values: Sequence[int] = TABLE_N_COLUMNS,
    n_runs: int = 20,
    seed: int = 0,
    budget: LinkBudget | None = None,
    name: str = "table",
    runner: "SweepRunner | None" = None,
) -> TableResult:
    """Measure all five protocols plus the lower bound.

    Each protocol sweeps through the parallel, cached engine.  Every
    ``(n, run)`` cell draws its tag population from a ``SeedSequence``
    child that depends only on the cell coordinates, so all protocols
    see the *same* population per cell (a paired comparison, as in the
    paper) while their plan seeds stay independent of the tagset draw.
    """
    from repro.experiments.runner import get_default_runner

    budget = budget if budget is not None else LinkBudget()
    runner = runner if runner is not None else get_default_runner()
    protocols = paper_protocols()
    seconds: dict[str, list[float]] = {}
    for p in protocols:
        key = p.name if p.name != "MIC" else "MIC, k=7"
        series = runner.sweep(p, n_values, n_runs=n_runs, seed=seed,
                              metric="time_us", info_bits=info_bits,
                              budget=budget)
        seconds[key] = [us / 1e6 for us in series.y]
    seconds["LowerBound"] = [
        lower_bound_us(n, info_bits) / 1e6 for n in n_values
    ]
    return TableResult(
        name=name,
        info_bits=info_bits,
        n_values=tuple(n_values),
        seconds=seconds,
        notes={"n_runs": n_runs},
    )


def table1(n_values: Sequence[int] = TABLE_N_COLUMNS, n_runs: int = 20,
           seed: int = 0, runner: "SweepRunner | None" = None) -> TableResult:
    """Table I: 1-bit information (presence against theft)."""
    return execution_time_table(1, n_values, n_runs, seed, name="Table I",
                                runner=runner)


def table2(n_values: Sequence[int] = TABLE_N_COLUMNS, n_runs: int = 20,
           seed: int = 0, runner: "SweepRunner | None" = None) -> TableResult:
    """Table II: 16-bit information."""
    return execution_time_table(16, n_values, n_runs, seed, name="Table II",
                                runner=runner)


def table3(n_values: Sequence[int] = TABLE_N_COLUMNS, n_runs: int = 20,
           seed: int = 0, runner: "SweepRunner | None" = None) -> TableResult:
    """Table III: 32-bit information."""
    return execution_time_table(32, n_values, n_runs, seed, name="Table III",
                                runner=runner)
