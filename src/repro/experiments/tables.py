"""Regenerators for Tables I–III: execution time of information collection.

Each table compares CPP / HPP / EHPP / MIC(k=7) / TPP and the lower
bound while collecting 1-, 16- and 32-bit information over populations
of 100 … 100 000 tags, averaged over seeded runs (the paper uses 100
runs; pass ``n_runs`` to trade precision for speed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.mic import MIC
from repro.core.base import PollingProtocol
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.common import render_table
from repro.experiments.paper_values import TABLE_N_COLUMNS
from repro.phy.commands import CommandSizes
from repro.phy.link import LinkBudget, lower_bound_us
from repro.workloads.tagsets import uniform_tagset

__all__ = ["TableResult", "execution_time_table", "table1", "table2", "table3"]


def paper_protocols() -> list[PollingProtocol]:
    """The five protocols of Tables I–III, with the paper's parameters."""
    commands = CommandSizes(round_init=32, circle_command=128)
    return [
        CPP(),
        HPP(commands=commands),
        EHPP(commands=commands),
        MIC(k=7),
        TPP(commands=commands),
    ]


@dataclass
class TableResult:
    """One reproduced table: seconds per protocol per population size."""

    name: str
    info_bits: int
    n_values: tuple[int, ...]
    seconds: dict[str, list[float]]  # protocol -> per-column times
    notes: dict[str, object] = field(default_factory=dict)

    def row(self, protocol: str) -> list[float]:
        return self.seconds[protocol]

    def cell(self, protocol: str, n: int) -> float:
        return self.seconds[protocol][self.n_values.index(n)]

    def render(self) -> str:
        return render_table(
            f"{self.name} — execution time (s), {self.info_bits}-bit information",
            "n =",
            self.n_values,
            self.seconds,
        )


def execution_time_table(
    info_bits: int,
    n_values: Sequence[int] = TABLE_N_COLUMNS,
    n_runs: int = 20,
    seed: int = 0,
    budget: LinkBudget | None = None,
    name: str = "table",
) -> TableResult:
    """Measure all five protocols plus the lower bound."""
    budget = budget if budget is not None else LinkBudget()
    protocols = paper_protocols()
    seconds: dict[str, list[float]] = {p.name if p.name != "MIC" else "MIC, k=7": []
                                       for p in protocols}
    seconds["LowerBound"] = []
    for n in n_values:
        per_proto = {key: 0.0 for key in seconds if key != "LowerBound"}
        for run in range(n_runs):
            rng = np.random.default_rng((seed, n, run))
            tags = uniform_tagset(n, rng)
            for p in protocols:
                key = p.name if p.name != "MIC" else "MIC, k=7"
                plan = p.plan(tags, rng)
                per_proto[key] += budget.plan_us(plan, info_bits) / 1e6
        for key, total in per_proto.items():
            seconds[key].append(total / n_runs)
        seconds["LowerBound"].append(lower_bound_us(n, info_bits) / 1e6)
    return TableResult(
        name=name,
        info_bits=info_bits,
        n_values=tuple(n_values),
        seconds=seconds,
        notes={"n_runs": n_runs},
    )


def table1(n_values: Sequence[int] = TABLE_N_COLUMNS, n_runs: int = 20,
           seed: int = 0) -> TableResult:
    """Table I: 1-bit information (presence against theft)."""
    return execution_time_table(1, n_values, n_runs, seed, name="Table I")


def table2(n_values: Sequence[int] = TABLE_N_COLUMNS, n_runs: int = 20,
           seed: int = 0) -> TableResult:
    """Table II: 16-bit information."""
    return execution_time_table(16, n_values, n_runs, seed, name="Table II")


def table3(n_values: Sequence[int] = TABLE_N_COLUMNS, n_runs: int = 20,
           seed: int = 0) -> TableResult:
    """Table III: 32-bit information."""
    return execution_time_table(32, n_values, n_runs, seed, name="Table III")
