"""CLI: regenerate the paper's figures and tables.

Usage::

    python -m repro.experiments                 # everything, full scale
    python -m repro.experiments fig10 table1    # a subset
    python -m repro.experiments --quick         # reduced runs (CI-sized)
    python -m repro.experiments --jobs 4        # 4 sweep worker processes
    python -m repro.experiments --no-cache      # recompute every cell
    python -m repro.experiments --cache-dir X   # persist cells across runs

Sweeps run through :mod:`repro.experiments.runner`: results are
bit-identical for any ``--jobs`` value, and cached per trial cell so
re-rendering a figure or table skips already-computed work.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablate_ecpp_clustering,
    ablate_ehpp_subset_size,
    ablate_mic_hash_count,
    ablate_tpp_index_policy,
    ext_churn,
    ext_energy,
    ext_lossy_channel,
    ext_multi_reader,
    fig1,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
    table3,
)

_FULL = {"n_runs": 100}
_QUICK = {"n_runs": 10}

_EXPERIMENTS = {
    "fig1": lambda quick: fig1(),
    "fig3": lambda quick: fig3(),
    "fig4": lambda quick: fig4(),
    "fig5": lambda quick: fig5(),
    "fig8": lambda quick: fig8(),
    "fig9": lambda quick: fig9(),
    "fig10": lambda quick: fig10(**(_QUICK if quick else _FULL)),
    "table1": lambda quick: table1(**(_QUICK if quick else _FULL)),
    "table2": lambda quick: table2(**(_QUICK if quick else _FULL)),
    "table3": lambda quick: table3(**(_QUICK if quick else _FULL)),
    "ablate_tpp_policy": lambda quick: ablate_tpp_index_policy(),
    "ablate_ehpp_subset": lambda quick: ablate_ehpp_subset_size(),
    "ablate_mic_k": lambda quick: ablate_mic_hash_count(),
    "ablate_ecpp": lambda quick: ablate_ecpp_clustering(),
    "ext_churn": lambda quick: ext_churn(
        n=500 if quick else 2_000, n_runs=1 if quick else 3),
    "ext_lossy": lambda quick: ext_lossy_channel(n_runs=1 if quick else 3),
    "ext_energy": lambda quick: ext_energy(n_runs=2 if quick else 5),
    "ext_multi_reader": lambda quick: ext_multi_reader(),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("names", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced run counts (10 instead of 100)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="additionally write a combined markdown report")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for Monte-Carlo sweeps "
                             "(default 1; results are identical for any N)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-cell sweep result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist the sweep cache to DIR (columnar "
                             "segment store, keyed on the code version), "
                             "so later runs skip already-computed cells; "
                             "inspect/compact it with `repro-rfid cache`")
    parser.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="plan each cell's Monte-Carlo replicas jointly "
                             "through the replica-axis batch path "
                             "(bit-identical values; --no-batch forces the "
                             "sequential per-cell path)")
    parser.add_argument("--shm", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="shared-memory dataplane for --jobs > 1: "
                             "populations are published once to /dev/shm "
                             "and a persistent warm worker pool is reused "
                             "across sweeps (bit-identical values; default "
                             "follows REPRO_SHM, which defaults to on; "
                             "--no-shm forces the legacy per-sweep pools)")
    parser.add_argument("--hosts", metavar="H:P,...", default=None,
                        help="dispatch sweep shards to these repro-rfid "
                             "hostagent daemons over TCP (host:port, "
                             "comma-separated; default follows REPRO_HOSTS; "
                             "bit-identical values, clean local fallback "
                             "when no agent answers)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.no_cache and args.cache_dir:
        parser.error("--no-cache and --cache-dir are mutually exclusive")

    from repro.experiments.runner import configure_default_runner

    runner = configure_default_runner(
        jobs=args.jobs, use_cache=not args.no_cache, cache_dir=args.cache_dir,
        batch=args.batch, shm=args.shm, hosts=args.hosts,
    )

    names = args.names or list(_EXPERIMENTS)
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; "
                     f"choose from {sorted(_EXPERIMENTS)}")
    results = []
    for name in names:
        t0 = time.perf_counter()
        result = _EXPERIMENTS[name](args.quick)
        dt = time.perf_counter() - t0
        results.append(result)
        print(result.render())
        print(f"# wall time: {dt:.1f}s")
        print()
    if runner.cache is not None and (runner.cache.hits or runner.cache.misses):
        print(f"# sweep cache: {runner.cache.hits} hits, "
              f"{runner.cache.misses} misses"
              + (f" (persisted to {runner.cache.directory})"
                 if runner.cache.directory else ""))
    cov = runner.batch_coverage
    if cov["batched_cells"] or cov["fallback_cells"]:
        print(f"# batch coverage: {cov['batched_cells']} cells batched, "
              f"{cov['fallback_cells']} per-cell, {cov['cached_cells']} "
              f"cache-served ({cov['batched_fraction']:.0%} of computed "
              f"cells batched, {cov['kernel_backend']} kernels)")
        print(f"# dataplane: {cov['bytes_shipped']} bytes shipped "
              f"({cov['bytes_raw']} raw), "
              f"{cov['shm_segments']} shm segments "
              f"({cov['shm_bytes']} bytes), "
              f"{cov['pool_reused']} warm-pool reuses")
        if runner.hosts_tuple:
            print(f"# remote: {cov['hosts_live']} live host(s), "
                  f"{cov['remote_shards']} shards served remotely, "
                  f"{cov['failovers']} failover(s)")
    if args.markdown:
        from repro.experiments.report import write_markdown_report

        out = write_markdown_report(args.markdown, results,
                                    title="Fast RFID polling — experiment report")
        print(f"# markdown report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
